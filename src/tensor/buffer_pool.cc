#include "tensor/buffer_pool.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace imr::tensor {

namespace {

// Caps keep a single thread's cache bounded: a bucket never holds more than
// kMaxBuffersPerBucket buffers, and a pool past kMaxPooledBytes starts
// freeing releases instead of caching them. Both are generous relative to a
// training step's working set, so steady state never trips them.
constexpr size_t kMaxBuffersPerBucket = 256;
constexpr size_t kMaxPooledBytes = size_t{256} << 20;  // 256 MiB per thread
constexpr int kNumBuckets = 48;                        // 2^47 floats is plenty

int CeilLog2(size_t n) {
  // n >= 1. bit_width(n - 1) == ceil(log2(n)) for n >= 2, and 0 for n == 1.
  return static_cast<int>(std::bit_width(n - 1));
}

int FloorLog2(size_t n) {
  // n >= 1.
  return static_cast<int>(std::bit_width(n)) - 1;
}

thread_local bool g_pool_enabled = true;

class BufferPool;

// The thread's pool, plus a flag distinguishing "not created yet" from
// "already destroyed": after thread-exit teardown every helper must fall
// back to the plain heap rather than resurrect a pool.
thread_local BufferPool* g_pool = nullptr;
thread_local bool g_pool_destroyed = false;

util::Mutex g_registry_mutex;
std::vector<BufferPool*>& Registry() IMR_REQUIRES(g_registry_mutex) {
  static std::vector<BufferPool*> registry;
  return registry;
}
// Counters inherited from pools whose threads have exited.
PoolStatsSnapshot& RetiredStats() IMR_REQUIRES(g_registry_mutex) {
  static PoolStatsSnapshot retired;
  return retired;
}

/// One thread's private pool. Acquire/Release run lock-free on the owning
/// thread; the relaxed-atomic counters let PoolStats() aggregate across
/// threads without synchronising the freelists themselves.
class BufferPool {
 public:
  BufferPool() {
    util::MutexLock lock(g_registry_mutex);
    Registry().push_back(this);
  }

  ~BufferPool() {
    FreeAll();
    util::MutexLock lock(g_registry_mutex);
    PoolStatsSnapshot& retired = RetiredStats();
    retired.buffer_hits += buffer_hits_.load(std::memory_order_relaxed);
    retired.buffer_misses += buffer_misses_.load(std::memory_order_relaxed);
    retired.node_hits += node_hits_.load(std::memory_order_relaxed);
    retired.node_misses += node_misses_.load(std::memory_order_relaxed);
    auto& registry = Registry();
    registry.erase(std::remove(registry.begin(), registry.end(), this),
                   registry.end());
    g_pool = nullptr;
    g_pool_destroyed = true;
  }

  /// The calling thread's pool; nullptr once thread teardown destroyed it.
  static BufferPool* Get() {
    if (g_pool == nullptr && !g_pool_destroyed) {
      thread_local BufferPool instance;
      g_pool = &instance;
    }
    return g_pool;
  }

  std::vector<float> AcquireBuffer(size_t n) {
    if (n == 0) return {};
    const int bucket_index = CeilLog2(n);
    if (bucket_index >= kNumBuckets) {  // absurd size: bypass, count a miss
      buffer_misses_.fetch_add(1, std::memory_order_relaxed);
      return std::vector<float>(n);
    }
    auto& bucket = float_buckets_[bucket_index];
    if (!bucket.empty()) {
      std::vector<float> buffer = std::move(bucket.back());
      bucket.pop_back();
      RecordRemoval(buffer.capacity() * sizeof(float));
      buffer_hits_.fetch_add(1, std::memory_order_relaxed);
      // Capacity >= 2^ceil_log2(n) >= n, so this never reallocates; new tail
      // elements (if the buffer grew) are value-initialised, the rest keep
      // stale contents — callers fully overwrite either way.
      buffer.resize(n);
      return buffer;
    }
    buffer_misses_.fetch_add(1, std::memory_order_relaxed);
    std::vector<float> buffer;
    // Reserve the full size class so the buffer returns to this bucket.
    buffer.reserve(size_t{1} << CeilLog2(n));
    buffer.resize(n);
    return buffer;
  }

  std::vector<float> AcquireBufferFill(size_t n, float fill) {
    std::vector<float> buffer = AcquireBuffer(n);
    std::fill(buffer.begin(), buffer.end(), fill);
    return buffer;
  }

  void ReleaseBuffer(std::vector<float>&& buffer) {
    const size_t cap = buffer.capacity();
    if (cap == 0) return;
    const size_t bytes = cap * sizeof(float);
    const int bucket_index = FloorLog2(cap);
    if (bucket_index >= kNumBuckets) return;
    auto& bucket = float_buckets_[bucket_index];
    if (bucket.size() >= kMaxBuffersPerBucket ||
        pooled_bytes_.load(std::memory_order_relaxed) + bytes >
            kMaxPooledBytes) {
      return;  // let the vector destructor free it
    }
    pooled_buffers_.fetch_add(1, std::memory_order_relaxed);
    pooled_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    bucket.push_back(std::move(buffer));
  }

  void* AcquireBytes(size_t bytes) {
    auto it = byte_freelists_.find(bytes);
    if (it != byte_freelists_.end() && !it->second.empty()) {
      void* block = it->second.back();
      it->second.pop_back();
      pooled_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      node_hits_.fetch_add(1, std::memory_order_relaxed);
      return block;
    }
    node_misses_.fetch_add(1, std::memory_order_relaxed);
    // The pool is the ownership boundary for recycled node blocks; raw
    // operator new/delete is the point of this file.
    return ::operator new(bytes);  // imr-lint: allow(no-naked-new)
  }

  void ReleaseBytes(void* ptr, size_t bytes) {
    auto& freelist = byte_freelists_[bytes];
    if (freelist.size() >= kMaxBuffersPerBucket ||
        pooled_bytes_.load(std::memory_order_relaxed) + bytes >
            kMaxPooledBytes) {
      ::operator delete(ptr);  // imr-lint: allow(no-naked-new)
      return;
    }
    pooled_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    freelist.push_back(ptr);
  }

  void FreeAll() {
    for (auto& bucket : float_buckets_) {
      for (std::vector<float>& buffer : bucket) {
        RecordRemoval(buffer.capacity() * sizeof(float));
      }
      bucket.clear();
    }
    for (auto& [bytes, freelist] : byte_freelists_) {
      for (void* block : freelist) {
        pooled_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
        ::operator delete(block);  // imr-lint: allow(no-naked-new)
      }
      freelist.clear();
    }
  }

  void AddTo(PoolStatsSnapshot* out) const {
    out->buffer_hits += buffer_hits_.load(std::memory_order_relaxed);
    out->buffer_misses += buffer_misses_.load(std::memory_order_relaxed);
    out->node_hits += node_hits_.load(std::memory_order_relaxed);
    out->node_misses += node_misses_.load(std::memory_order_relaxed);
    out->pooled_buffers += pooled_buffers_.load(std::memory_order_relaxed);
    out->pooled_bytes += pooled_bytes_.load(std::memory_order_relaxed);
  }

  void ResetCounters() {
    buffer_hits_.store(0, std::memory_order_relaxed);
    buffer_misses_.store(0, std::memory_order_relaxed);
    node_hits_.store(0, std::memory_order_relaxed);
    node_misses_.store(0, std::memory_order_relaxed);
  }

 private:
  void RecordRemoval(size_t bytes) {
    pooled_buffers_.fetch_sub(1, std::memory_order_relaxed);
    pooled_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  // Freelists are owner-thread-only; counters are cross-thread-readable.
  // float_buckets_[k] caches buffers with capacity in [2^k, 2^(k+1)).
  std::vector<std::vector<std::vector<float>>> float_buckets_{kNumBuckets};
  std::unordered_map<size_t, std::vector<void*>> byte_freelists_;
  std::atomic<uint64_t> buffer_hits_{0};
  std::atomic<uint64_t> buffer_misses_{0};
  std::atomic<uint64_t> node_hits_{0};
  std::atomic<uint64_t> node_misses_{0};
  std::atomic<uint64_t> pooled_buffers_{0};
  std::atomic<uint64_t> pooled_bytes_{0};
};

}  // namespace

PoolStatsSnapshot PoolStats() {
  util::MutexLock lock(g_registry_mutex);
  PoolStatsSnapshot out = RetiredStats();
  for (const BufferPool* pool : Registry()) pool->AddTo(&out);
  return out;
}

void ResetPoolStats() {
  util::MutexLock lock(g_registry_mutex);
  PoolStatsSnapshot& retired = RetiredStats();
  retired.buffer_hits = 0;
  retired.buffer_misses = 0;
  retired.node_hits = 0;
  retired.node_misses = 0;
  for (BufferPool* pool : Registry()) pool->ResetCounters();
}

bool PoolEnabled() { return g_pool_enabled; }

PoolDisabledGuard::PoolDisabledGuard() : previous_(g_pool_enabled) {
  g_pool_enabled = false;
}

PoolDisabledGuard::~PoolDisabledGuard() { g_pool_enabled = previous_; }

namespace internal {

std::vector<float> AcquireBuffer(size_t n) {
  if (g_pool_enabled) {
    if (BufferPool* pool = BufferPool::Get()) return pool->AcquireBuffer(n);
  }
  return std::vector<float>(n);
}

std::vector<float> AcquireBufferFill(size_t n, float fill) {
  if (g_pool_enabled) {
    if (BufferPool* pool = BufferPool::Get()) {
      return pool->AcquireBufferFill(n, fill);
    }
  }
  return std::vector<float>(n, fill);
}

void ReleaseBuffer(std::vector<float>&& buffer) {
  if (g_pool_enabled) {
    if (BufferPool* pool = BufferPool::Get()) {
      pool->ReleaseBuffer(std::move(buffer));
      return;
    }
  }
  std::vector<float> discard = std::move(buffer);  // frees on scope exit
}

void* AcquireBytes(size_t bytes) {
  if (g_pool_enabled) {
    if (BufferPool* pool = BufferPool::Get()) return pool->AcquireBytes(bytes);
  }
  return ::operator new(bytes);  // imr-lint: allow(no-naked-new)
}

void ReleaseBytes(void* ptr, size_t bytes) {
  if (g_pool_enabled) {
    if (BufferPool* pool = BufferPool::Get()) {
      pool->ReleaseBytes(ptr, bytes);
      return;
    }
  }
  ::operator delete(ptr);  // imr-lint: allow(no-naked-new)
}

void TrimThreadPool() {
  if (BufferPool* pool = BufferPool::Get()) pool->FreeAll();
}

}  // namespace internal

}  // namespace imr::tensor
