#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/buffer_pool.h"
#include "tensor/simd/dispatch.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace imr::tensor {

namespace {

using internal::AcquireBuffer;
using internal::AcquireBufferFill;
using internal::MakeResult;
using internal::PooledFloats;
using internal::TensorImpl;

// Accumulates `delta` into the grad of `parent` if it requires grad.
inline bool WantsGrad(const Tensor& t) {
  return t.defined() && t.requires_grad();
}

inline std::vector<float>* GradOf(const Tensor& t) {
  // Routes through the thread-local gradient sink (when one is active) so
  // data-parallel backward passes accumulate leaf grads privately.
  return internal::GradTarget(t.impl());
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  IMR_CHECK(a.shape() == b.shape());
}

// ---- MatMul kernels -------------------------------------------------------
//
// Bit-exactness contract (scalar backend): every output element's float
// accumulation sequence is fixed by the element itself (k ascending for the
// forward/dA dots, i ascending for dB), never by chunk boundaries or thread
// count, so results are identical at any --imr_threads — and identical to
// the original scalar kernels (zero operands are skipped exactly as before).
//
// Forward inner loops dispatch through tensor/simd: simd::Active() resolves
// to the scalar reference while autograd records (unless vectorized
// training was opted in) and to the fastest ISA under NoGradGuard. Vector
// backends keep per-shape determinism but may reassociate reductions; see
// tensor/simd/dispatch.h for the contract. Backward kernels stay scalar —
// they run only in training, where scalar is the gate reference anyway.

// Work below this many multiply-adds is not worth a pool dispatch.
constexpr int64_t kMatMulParallelFlops = 1 << 14;
// Packing pays for itself only when the packed panel is reused many times.
constexpr int kMatMulMinRowsForPack = 8;

// Grain (rows per chunk) is a pure function of the shape, keeping chunk
// boundaries independent of the worker count.
inline int64_t RowGrain(int64_t per_row_work) {
  return std::max<int64_t>(1, kMatMulParallelFlops / std::max<int64_t>(1, per_row_work));
}

// Packs row-major src [rows x cols] into dst as its transpose [cols x rows].
// Blocked for cache friendliness; pure copies, so trivially deterministic.
void PackTranspose(const float* src, int rows, int cols, float* dst,
                   util::ThreadPool* pool) {
  constexpr int kBlock = 32;
  auto pack_panel = [&](int64_t j_lo, int64_t j_hi) {
    for (int64_t jb = j_lo; jb < j_hi; jb += kBlock) {
      const int64_t j_end = std::min<int64_t>(j_hi, jb + kBlock);
      for (int ib = 0; ib < rows; ib += kBlock) {
        const int i_end = std::min(rows, ib + kBlock);
        for (int64_t j = jb; j < j_end; ++j) {
          float* drow = dst + j * rows;
          for (int i = ib; i < i_end; ++i) {
            drow[i] = src[static_cast<size_t>(i) * cols + j];
          }
        }
      }
    }
  };
  const int64_t work = static_cast<int64_t>(rows) * cols;
  if (pool != nullptr && work >= kMatMulParallelFlops && cols > kBlock) {
    pool->ParallelFor(0, cols, kBlock, pack_panel);
  } else {
    pack_panel(0, cols);
  }
}

// ---- shared MatMul kernel entry points ------------------------------------
//
// MatMul and the fused AffineTanh drive these identical kernels (same path
// selection thresholds, same per-element accumulation order), which is what
// makes the fused op bit-identical to its unfused composition at threads=1
// and at any thread count.

// out must be zero-initialised ([rows x cols]); computes out = a @ b.
void MatMulForwardInto(const float* av, const float* bv, float* out, int rows,
                       int inner, int cols) {
  // Resolve the kernel table on the calling thread (GradModeEnabled() is
  // thread-local) and hand the same table to every ParallelFor worker.
  const simd::Kernels& kernels = simd::Active();
  const int64_t flops = static_cast<int64_t>(rows) * inner * cols;
  if (rows >= kMatMulMinRowsForPack && flops >= kMatMulParallelFlops) {
    // Blocked kernel: pack B^T once, then compute row panels of dots. The
    // packed panel streams contiguously for every output row.
    util::ThreadPool& pool = util::GlobalPool();
    PooledFloats bt(AcquireBuffer(static_cast<size_t>(cols) * inner));
    PackTranspose(bv, inner, cols, bt.data(), &pool);
    const float* btv = bt.data();
    pool.ParallelFor(0, rows, RowGrain(static_cast<int64_t>(inner) * cols),
                     [&](int64_t lo, int64_t hi) {
                       kernels.matmul_panel_dot(av, btv, out, lo, hi, inner,
                                                cols);
                     });
  } else {
    // ikj ordering: streams through b row-wise.
    kernels.matmul_ikj(av, bv, out, rows, inner, cols);
  }
}

// gav += gout @ b^T : [rows x cols] x [cols x inner]. Each dA[i,k] is a
// fresh dot over j added once into the existing grad — b is streamed
// row-contiguously, and the form is kept exactly as the scalar kernel so
// in-place accumulation stays bit-identical.
void MatMulAccumGradA(const float* gout, const float* bv, float* gav,
                      int rows, int inner, int cols) {
  const int64_t flops = static_cast<int64_t>(rows) * inner * cols;
  auto da_rows = [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* __restrict grow = gout + static_cast<size_t>(i) * cols;
      float* __restrict garow = gav + static_cast<size_t>(i) * inner;
      for (int k = 0; k < inner; ++k) {
        const float* __restrict brow = bv + static_cast<size_t>(k) * cols;
        float acc = 0.0f;
        for (int j = 0; j < cols; ++j) acc += grow[j] * brow[j];
        garow[k] += acc;
      }
    }
  };
  if (flops >= kMatMulParallelFlops && rows >= 2) {
    util::GlobalPool().ParallelFor(
        0, rows, RowGrain(static_cast<int64_t>(inner) * cols), da_rows);
  } else {
    da_rows(0, rows);
  }
}

// gbv += a^T @ gout : [inner x rows] x [rows x cols]. Restructured k-outer
// over a packed A^T so each dB row is produced by exactly one chunk and gb
// is streamed once instead of once per i. Per (k,j) the accumulation stays
// i-ascending with the same zero-skip, so bits match the i-outer scalar
// kernel exactly.
void MatMulAccumGradB(const float* gout, const float* av, float* gbv,
                      int rows, int inner, int cols) {
  const int64_t flops = static_cast<int64_t>(rows) * inner * cols;
  if (flops >= kMatMulParallelFlops && rows >= kMatMulMinRowsForPack) {
    util::ThreadPool& pool = util::GlobalPool();
    PooledFloats at(AcquireBuffer(static_cast<size_t>(inner) * rows));
    PackTranspose(av, rows, inner, at.data(), &pool);
    const float* atv = at.data();
    pool.ParallelFor(
        0, inner, RowGrain(static_cast<int64_t>(rows) * cols),
        [&](int64_t lo, int64_t hi) {
          for (int64_t k = lo; k < hi; ++k) {
            const float* __restrict atrow = atv + static_cast<size_t>(k) * rows;
            float* __restrict gbrow = gbv + static_cast<size_t>(k) * cols;
            for (int i = 0; i < rows; ++i) {
              const float aval = atrow[i];
              if (aval == 0.0f) continue;
              const float* __restrict grow =
                  gout + static_cast<size_t>(i) * cols;
              for (int j = 0; j < cols; ++j) gbrow[j] += aval * grow[j];
            }
          }
        });
  } else {
    for (int i = 0; i < rows; ++i) {
      const float* __restrict arow = av + static_cast<size_t>(i) * inner;
      const float* __restrict grow = gout + static_cast<size_t>(i) * cols;
      for (int k = 0; k < inner; ++k) {
        const float aval = arow[k];
        if (aval == 0.0f) continue;
        float* __restrict gbrow = gbv + static_cast<size_t>(k) * cols;
        for (int j = 0; j < cols; ++j) gbrow[j] += aval * grow[j];
      }
    }
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  std::vector<float> out = AcquireBuffer(a.size());
  simd::Active().add(a.data().data(), b.data().data(), out.data(),
                     out.size());
  return MakeResult(a.shape(), std::move(out), {a, b},
                    [a, b](TensorImpl& self) {
                      if (WantsGrad(a)) {
                        auto* ga = GradOf(a);
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          (*ga)[i] += self.grad[i];
                      }
                      if (WantsGrad(b)) {
                        auto* gb = GradOf(b);
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          (*gb)[i] += self.grad[i];
                      }
                    });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  std::vector<float> out = AcquireBuffer(a.size());
  simd::Active().sub(a.data().data(), b.data().data(), out.data(),
                     out.size());
  return MakeResult(a.shape(), std::move(out), {a, b},
                    [a, b](TensorImpl& self) {
                      if (WantsGrad(a)) {
                        auto* ga = GradOf(a);
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          (*ga)[i] += self.grad[i];
                      }
                      if (WantsGrad(b)) {
                        auto* gb = GradOf(b);
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          (*gb)[i] -= self.grad[i];
                      }
                    });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  std::vector<float> out = AcquireBuffer(a.size());
  simd::Active().mul(a.data().data(), b.data().data(), out.data(),
                     out.size());
  return MakeResult(a.shape(), std::move(out), {a, b},
                    [a, b](TensorImpl& self) {
                      const auto& av = a.data();
                      const auto& bv = b.data();
                      if (WantsGrad(a)) {
                        auto* ga = GradOf(a);
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          (*ga)[i] += self.grad[i] * bv[i];
                      }
                      if (WantsGrad(b)) {
                        auto* gb = GradOf(b);
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          (*gb)[i] += self.grad[i] * av[i];
                      }
                    });
}

Tensor Scale(const Tensor& a, float s) {
  std::vector<float> out = AcquireBuffer(a.size());
  simd::Active().scale(a.data().data(), s, out.data(), out.size());
  return MakeResult(a.shape(), std::move(out), {a},
                    [a, s](TensorImpl& self) {
                      if (!WantsGrad(a)) return;
                      auto* ga = GradOf(a);
                      for (size_t i = 0; i < self.grad.size(); ++i)
                        (*ga)[i] += self.grad[i] * s;
                    });
}

Tensor ScaleByScalarTensor(const Tensor& a, const Tensor& s) {
  IMR_CHECK_EQ(s.size(), 1u);
  const float sv = s.data()[0];
  std::vector<float> out = AcquireBuffer(a.size());
  const auto& av = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = av[i] * sv;
  return MakeResult(a.shape(), std::move(out), {a, s},
                    [a, s](TensorImpl& self) {
                      const float sv = s.data()[0];
                      if (WantsGrad(a)) {
                        auto* ga = GradOf(a);
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          (*ga)[i] += self.grad[i] * sv;
                      }
                      if (WantsGrad(s)) {
                        auto* gs = GradOf(s);
                        const auto& av = a.data();
                        float acc = 0.0f;
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          acc += self.grad[i] * av[i];
                        (*gs)[0] += acc;
                      }
                    });
}

Tensor AddScalar(const Tensor& a, float s) {
  std::vector<float> out = AcquireBuffer(a.size());
  const auto& av = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = av[i] + s;
  return MakeResult(a.shape(), std::move(out), {a},
                    [a](TensorImpl& self) {
                      if (!WantsGrad(a)) return;
                      auto* ga = GradOf(a);
                      for (size_t i = 0; i < self.grad.size(); ++i)
                        (*ga)[i] += self.grad[i];
                    });
}

Tensor Tanh(const Tensor& a) {
  std::vector<float> out = AcquireBuffer(a.size());
  simd::Active().tanh(a.data().data(), out.data(), out.size());
  return MakeResult(a.shape(), std::move(out), {a},
                    [a](TensorImpl& self) {
                      if (!WantsGrad(a)) return;
                      auto* ga = GradOf(a);
                      for (size_t i = 0; i < self.grad.size(); ++i) {
                        const float y = self.value[i];
                        (*ga)[i] += self.grad[i] * (1.0f - y * y);
                      }
                    });
}

Tensor Sigmoid(const Tensor& a) {
  std::vector<float> out = AcquireBuffer(a.size());
  const auto& av = a.data();
  for (size_t i = 0; i < out.size(); ++i)
    out[i] = 1.0f / (1.0f + std::exp(-av[i]));
  return MakeResult(a.shape(), std::move(out), {a},
                    [a](TensorImpl& self) {
                      if (!WantsGrad(a)) return;
                      auto* ga = GradOf(a);
                      for (size_t i = 0; i < self.grad.size(); ++i) {
                        const float y = self.value[i];
                        (*ga)[i] += self.grad[i] * y * (1.0f - y);
                      }
                    });
}

Tensor Relu(const Tensor& a) {
  std::vector<float> out = AcquireBuffer(a.size());
  const auto& av = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = av[i] > 0 ? av[i] : 0.0f;
  return MakeResult(a.shape(), std::move(out), {a},
                    [a](TensorImpl& self) {
                      if (!WantsGrad(a)) return;
                      auto* ga = GradOf(a);
                      for (size_t i = 0; i < self.grad.size(); ++i) {
                        if (self.value[i] > 0) (*ga)[i] += self.grad[i];
                      }
                    });
}

Tensor Dropout(const Tensor& a, float p, util::Rng* rng, bool training) {
  if (!training || p <= 0.0f) return a;
  IMR_CHECK(rng != nullptr);
  IMR_CHECK_LT(p, 1.0f);
  const float keep_scale = 1.0f / (1.0f - p);
  // The mask rides along in the backward closure; PooledFloats returns its
  // storage to the pool when the graph node dies.
  PooledFloats mask(AcquireBuffer(a.size()));
  std::vector<float> out = AcquireBuffer(a.size());
  const auto& av = a.data();
  for (size_t i = 0; i < out.size(); ++i) {
    mask[i] = rng->Bernoulli(p) ? 0.0f : keep_scale;
    out[i] = av[i] * mask[i];
  }
  return MakeResult(a.shape(), std::move(out), {a},
                    [a, mask = std::move(mask)](TensorImpl& self) {
                      if (!WantsGrad(a)) return;
                      auto* ga = GradOf(a);
                      for (size_t i = 0; i < self.grad.size(); ++i)
                        (*ga)[i] += self.grad[i] * mask[i];
                    });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  const bool lhs_vector = (a.rank() == 1);
  const int rows = lhs_vector ? 1 : a.shape()[0];
  const int inner = lhs_vector ? a.shape()[0] : a.shape()[1];
  IMR_CHECK_EQ(b.rank(), 2);
  IMR_CHECK_EQ(b.shape()[0], inner);
  const int cols = b.shape()[1];

  std::vector<float> out =
      AcquireBufferFill(static_cast<size_t>(rows) * cols, 0.0f);
  MatMulForwardInto(a.data().data(), b.data().data(), out.data(), rows, inner,
                    cols);
  std::vector<int> out_shape =
      lhs_vector ? std::vector<int>{cols} : std::vector<int>{rows, cols};
  return MakeResult(
      std::move(out_shape), std::move(out), {a, b},
      [a, b, rows, inner, cols](TensorImpl& self) {
        const float* gout = self.grad.data();
        if (WantsGrad(a)) {
          MatMulAccumGradA(gout, b.data().data(), GradOf(a)->data(), rows,
                           inner, cols);
        }
        if (WantsGrad(b)) {
          MatMulAccumGradB(gout, a.data().data(), GradOf(b)->data(), rows,
                           inner, cols);
        }
      });
}

Tensor AffineTanh(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  const bool lhs_vector = (x.rank() == 1);
  const int rows = lhs_vector ? 1 : x.shape()[0];
  const int inner = lhs_vector ? x.shape()[0] : x.shape()[1];
  IMR_CHECK_EQ(weight.rank(), 2);
  IMR_CHECK_EQ(weight.shape()[0], inner);
  const int cols = weight.shape()[1];
  IMR_CHECK_EQ(static_cast<int>(bias.size()), cols);

  // Same MatMul kernel (and path selection) as the unfused composition; the
  // bias add and tanh fuse into one pass over the hot output instead of two
  // extra node allocations and three extra sweeps.
  std::vector<float> out =
      AcquireBufferFill(static_cast<size_t>(rows) * cols, 0.0f);
  MatMulForwardInto(x.data().data(), weight.data().data(), out.data(), rows,
                    inner, cols);
  simd::Active().affine_tanh_finish(out.data(), bias.data().data(), rows,
                                    cols);
  std::vector<int> out_shape =
      lhs_vector ? std::vector<int>{cols} : std::vector<int>{rows, cols};
  return MakeResult(
      std::move(out_shape), std::move(out), {x, weight, bias},
      [x, weight, bias, rows, inner, cols](TensorImpl& self) {
        // d(pre-tanh) = gy * (1 - y^2). The leading `0.0f +` reproduces the
        // unfused composition exactly: there Tanh's backward accumulates
        // into the Add node's zero-initialised grad, which washes any -0.0f
        // to +0.0f before it reaches the bias/matmul backward kernels.
        const size_t n = self.grad.size();
        PooledFloats g2(AcquireBuffer(n));
        const float* __restrict gy = self.grad.data();
        const float* __restrict y = self.value.data();
        float* __restrict g2v = g2.data();
        for (size_t i = 0; i < n; ++i) {
          g2v[i] = 0.0f + gy[i] * (1.0f - y[i] * y[i]);
        }
        if (WantsGrad(bias)) {
          // Row-sum in r-ascending order, exactly as AddRowVector's (or,
          // for rank-1 x, Add's) backward accumulates into the bias.
          float* __restrict gbv = GradOf(bias)->data();
          for (int r = 0; r < rows; ++r) {
            const float* __restrict grow = g2v + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) gbv[c] += grow[c];
          }
        }
        if (WantsGrad(x)) {
          MatMulAccumGradA(g2v, weight.data().data(), GradOf(x)->data(), rows,
                           inner, cols);
        }
        if (WantsGrad(weight)) {
          MatMulAccumGradB(g2v, x.data().data(), GradOf(weight)->data(), rows,
                           inner, cols);
        }
      });
}

Tensor AddRowVector(const Tensor& m, const Tensor& v) {
  const int rows = m.rows();
  const int cols = m.cols();
  IMR_CHECK_EQ(static_cast<int>(v.size()), cols);
  std::vector<float> out = AcquireBuffer(m.size());
  const auto& mv = m.data();
  const auto& vv = v.data();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      out[static_cast<size_t>(r) * cols + c] =
          mv[static_cast<size_t>(r) * cols + c] + vv[c];
    }
  }
  return MakeResult(m.shape(), std::move(out), {m, v},
                    [m, v, rows, cols](TensorImpl& self) {
                      if (WantsGrad(m)) {
                        auto* gm = GradOf(m);
                        for (size_t i = 0; i < self.grad.size(); ++i)
                          (*gm)[i] += self.grad[i];
                      }
                      if (WantsGrad(v)) {
                        auto* gv = GradOf(v);
                        for (int r = 0; r < rows; ++r)
                          for (int c = 0; c < cols; ++c)
                            (*gv)[c] +=
                                self.grad[static_cast<size_t>(r) * cols + c];
                      }
                    });
}

Tensor RowwiseDot(const Tensor& x, const Tensor& q) {
  IMR_CHECK_EQ(x.rank(), 2);
  const int rows = x.shape()[0];
  const int cols = x.shape()[1];
  IMR_CHECK_EQ(static_cast<int>(q.size()), cols);
  std::vector<float> out = AcquireBuffer(rows);  // every out[r] is assigned
  const auto& xv = x.data();
  const auto& qv = q.data();
  for (int r = 0; r < rows; ++r) {
    float acc = 0.0f;
    for (int c = 0; c < cols; ++c)
      acc += xv[static_cast<size_t>(r) * cols + c] * qv[c];
    out[r] = acc;
  }
  return MakeResult({rows}, std::move(out), {x, q},
                    [x, q, rows, cols](TensorImpl& self) {
                      const auto& xv = x.data();
                      const auto& qv = q.data();
                      if (WantsGrad(x)) {
                        auto* gx = GradOf(x);
                        for (int r = 0; r < rows; ++r)
                          for (int c = 0; c < cols; ++c)
                            (*gx)[static_cast<size_t>(r) * cols + c] +=
                                self.grad[r] * qv[c];
                      }
                      if (WantsGrad(q)) {
                        auto* gq = GradOf(q);
                        for (int r = 0; r < rows; ++r)
                          for (int c = 0; c < cols; ++c)
                            (*gq)[c] +=
                                self.grad[r] *
                                xv[static_cast<size_t>(r) * cols + c];
                      }
                    });
}

Tensor WeightedSumRows(const Tensor& x, const Tensor& w) {
  IMR_CHECK_EQ(x.rank(), 2);
  const int rows = x.shape()[0];
  const int cols = x.shape()[1];
  IMR_CHECK_EQ(static_cast<int>(w.size()), rows);
  std::vector<float> out = AcquireBufferFill(cols, 0.0f);
  const auto& xv = x.data();
  const auto& wv = w.data();
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      out[c] += wv[r] * xv[static_cast<size_t>(r) * cols + c];
  return MakeResult({cols}, std::move(out), {x, w},
                    [x, w, rows, cols](TensorImpl& self) {
                      const auto& xv = x.data();
                      const auto& wv = w.data();
                      if (WantsGrad(x)) {
                        auto* gx = GradOf(x);
                        for (int r = 0; r < rows; ++r)
                          for (int c = 0; c < cols; ++c)
                            (*gx)[static_cast<size_t>(r) * cols + c] +=
                                wv[r] * self.grad[c];
                      }
                      if (WantsGrad(w)) {
                        auto* gw = GradOf(w);
                        for (int r = 0; r < rows; ++r) {
                          float acc = 0.0f;
                          for (int c = 0; c < cols; ++c)
                            acc += xv[static_cast<size_t>(r) * cols + c] *
                                   self.grad[c];
                          (*gw)[r] += acc;
                        }
                      }
                    });
}

Tensor Reshape(const Tensor& a, std::vector<int> shape) {
  size_t n = 1;
  for (int d : shape) n *= static_cast<size_t>(d);
  IMR_CHECK_EQ(n, a.size());
  std::vector<float> out = AcquireBuffer(a.size());
  std::copy(a.data().begin(), a.data().end(), out.begin());
  return MakeResult(std::move(shape), std::move(out), {a},
                    [a](TensorImpl& self) {
                      if (!WantsGrad(a)) return;
                      auto* ga = GradOf(a);
                      for (size_t i = 0; i < self.grad.size(); ++i)
                        (*ga)[i] += self.grad[i];
                    });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  IMR_CHECK(!parts.empty());
  const int cols = parts[0].cols();
  int total_rows = 0;
  for (const Tensor& p : parts) {
    IMR_CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
  }
  std::vector<float> out =
      AcquireBuffer(static_cast<size_t>(total_rows) * cols);
  size_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data().begin(), p.data().end(), out.begin() + offset);
    offset += p.size();
  }
  return MakeResult({total_rows, cols}, std::move(out),
                    std::vector<Tensor>(parts), [parts](TensorImpl& self) {
                      size_t offset = 0;
                      for (const Tensor& p : parts) {
                        if (WantsGrad(p)) {
                          auto* gp = GradOf(p);
                          for (size_t i = 0; i < p.size(); ++i)
                            (*gp)[i] += self.grad[offset + i];
                        }
                        offset += p.size();
                      }
                    });
}

Tensor ConcatVec(const std::vector<Tensor>& parts) {
  IMR_CHECK(!parts.empty());
  int total = 0;
  for (const Tensor& p : parts) {
    IMR_CHECK_EQ(p.rank(), 1);
    total += p.shape()[0];
  }
  std::vector<float> out = AcquireBuffer(static_cast<size_t>(total));
  size_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data().begin(), p.data().end(), out.begin() + offset);
    offset += p.size();
  }
  return MakeResult({total}, std::move(out), std::vector<Tensor>(parts),
                    [parts](TensorImpl& self) {
                      size_t offset = 0;
                      for (const Tensor& p : parts) {
                        if (WantsGrad(p)) {
                          auto* gp = GradOf(p);
                          for (size_t i = 0; i < p.size(); ++i)
                            (*gp)[i] += self.grad[offset + i];
                        }
                        offset += p.size();
                      }
                    });
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  IMR_CHECK(!parts.empty());
  const int rows = parts[0].rows();
  int total_cols = 0;
  for (const Tensor& p : parts) {
    IMR_CHECK_EQ(p.rank(), 2);
    IMR_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
  }
  std::vector<float> out =
      AcquireBuffer(static_cast<size_t>(rows) * total_cols);
  int col_offset = 0;
  for (const Tensor& p : parts) {
    const int cols = p.cols();
    const auto& pv = p.data();
    for (int r = 0; r < rows; ++r) {
      std::copy(pv.begin() + static_cast<size_t>(r) * cols,
                pv.begin() + static_cast<size_t>(r + 1) * cols,
                out.begin() + static_cast<size_t>(r) * total_cols +
                    col_offset);
    }
    col_offset += cols;
  }
  return MakeResult({rows, total_cols}, std::move(out),
                    std::vector<Tensor>(parts),
                    [parts, rows, total_cols](TensorImpl& self) {
                      int col_offset = 0;
                      for (const Tensor& p : parts) {
                        const int cols = p.cols();
                        if (WantsGrad(p)) {
                          auto* gp = GradOf(p);
                          for (int r = 0; r < rows; ++r)
                            for (int c = 0; c < cols; ++c)
                              (*gp)[static_cast<size_t>(r) * cols + c] +=
                                  self.grad[static_cast<size_t>(r) *
                                                total_cols +
                                            col_offset + c];
                        }
                        col_offset += cols;
                      }
                    });
}

Tensor Row(const Tensor& x, int r) {
  IMR_CHECK_EQ(x.rank(), 2);
  IMR_CHECK_GE(r, 0);
  IMR_CHECK_LT(r, x.shape()[0]);
  const int cols = x.shape()[1];
  std::vector<float> out = AcquireBuffer(static_cast<size_t>(cols));
  std::copy(x.data().begin() + static_cast<size_t>(r) * cols,
            x.data().begin() + static_cast<size_t>(r + 1) * cols,
            out.begin());
  return MakeResult({cols}, std::move(out), {x},
                    [x, r, cols](TensorImpl& self) {
                      if (!WantsGrad(x)) return;
                      auto* gx = GradOf(x);
                      for (int c = 0; c < cols; ++c)
                        (*gx)[static_cast<size_t>(r) * cols + c] +=
                            self.grad[c];
                    });
}

Tensor Slice(const Tensor& v, int start, int len) {
  IMR_CHECK_EQ(v.rank(), 1);
  IMR_CHECK_GE(start, 0);
  IMR_CHECK_GE(len, 0);
  IMR_CHECK_LE(start + len, v.shape()[0]);
  std::vector<float> out = AcquireBuffer(static_cast<size_t>(len));
  std::copy(v.data().begin() + start, v.data().begin() + start + len,
            out.begin());
  return MakeResult({len}, std::move(out), {v},
                    [v, start, len](TensorImpl& self) {
                      if (!WantsGrad(v)) return;
                      auto* gv = GradOf(v);
                      for (int i = 0; i < len; ++i)
                        (*gv)[start + i] += self.grad[i];
                    });
}

Tensor GatherRows(const Tensor& table, const std::vector<int>& indices) {
  IMR_CHECK_EQ(table.rank(), 2);
  const int vocab = table.shape()[0];
  const int dim = table.shape()[1];
  // Let a lazily-updating optimizer replay deferred updates for these rows
  // before their values are read (keeps sparse == dense bit-identical).
  if (table.impl()->row_materializer) table.impl()->row_materializer(indices);
  std::vector<float> out =
      AcquireBuffer(indices.size() * static_cast<size_t>(dim));
  const auto& tv = table.data();
  for (size_t n = 0; n < indices.size(); ++n) {
    const int idx = indices[n];
    IMR_CHECK_GE(idx, 0);
    IMR_CHECK_LT(idx, vocab);
    std::copy(tv.begin() + static_cast<size_t>(idx) * dim,
              tv.begin() + static_cast<size_t>(idx + 1) * dim,
              out.begin() + n * dim);
  }
  return MakeResult({static_cast<int>(indices.size()), dim}, std::move(out),
                    {table}, [table, indices, dim](TensorImpl& self) {
                      if (!WantsGrad(table)) return;
                      // Row-tracked accumulation: a row-sparse table (see
                      // Tensor::set_row_sparse_grad) records exactly these
                      // rows so ZeroGrad / merge / optimizers never walk
                      // the untouched remainder of the vocab.
                      auto* gt = internal::GradTargetRows(table.impl(),
                                                          indices);
                      for (size_t n = 0; n < indices.size(); ++n) {
                        const size_t dst =
                            static_cast<size_t>(indices[n]) * dim;
                        for (int c = 0; c < dim; ++c)
                          (*gt)[dst + c] += self.grad[n * dim + c];
                      }
                    });
}

Tensor Sum(const Tensor& a) {
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  std::vector<float> out = AcquireBuffer(1);
  out[0] = acc;
  return MakeResult({1}, std::move(out), {a}, [a](TensorImpl& self) {
    if (!WantsGrad(a)) return;
    auto* ga = GradOf(a);
    for (size_t i = 0; i < ga->size(); ++i) (*ga)[i] += self.grad[0];
  });
}

Tensor Mean(const Tensor& a) {
  IMR_CHECK_GT(a.size(), 0u);
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  const float inv = 1.0f / static_cast<float>(a.size());
  std::vector<float> out = AcquireBuffer(1);
  out[0] = acc * inv;
  return MakeResult({1}, std::move(out), {a}, [a, inv](TensorImpl& self) {
    if (!WantsGrad(a)) return;
    auto* ga = GradOf(a);
    for (size_t i = 0; i < ga->size(); ++i) (*ga)[i] += self.grad[0] * inv;
  });
}

Tensor SumRows(const Tensor& x) {
  IMR_CHECK_EQ(x.rank(), 2);
  const int rows = x.shape()[0];
  const int cols = x.shape()[1];
  std::vector<float> out = AcquireBufferFill(cols, 0.0f);
  const auto& xv = x.data();
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      out[c] += xv[static_cast<size_t>(r) * cols + c];
  return MakeResult({cols}, std::move(out), {x},
                    [x, rows, cols](TensorImpl& self) {
                      if (!WantsGrad(x)) return;
                      auto* gx = GradOf(x);
                      for (int r = 0; r < rows; ++r)
                        for (int c = 0; c < cols; ++c)
                          (*gx)[static_cast<size_t>(r) * cols + c] +=
                              self.grad[c];
                    });
}

Tensor MeanRows(const Tensor& x) {
  IMR_CHECK_EQ(x.rank(), 2);
  IMR_CHECK_GT(x.shape()[0], 0);
  return Scale(SumRows(x), 1.0f / static_cast<float>(x.shape()[0]));
}

Tensor MaxOverRows(const Tensor& x) {
  IMR_CHECK_EQ(x.rank(), 2);
  const int rows = x.shape()[0];
  const int cols = x.shape()[1];
  IMR_CHECK_GT(rows, 0);
  std::vector<float> out =
      AcquireBufferFill(cols, -std::numeric_limits<float>::infinity());
  std::vector<int> argmax(cols, 0);
  const auto& xv = x.data();
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const float v = xv[static_cast<size_t>(r) * cols + c];
      if (v > out[c]) {
        out[c] = v;
        argmax[c] = r;
      }
    }
  }
  return MakeResult({cols}, std::move(out), {x},
                    [x, argmax = std::move(argmax), cols](TensorImpl& self) {
                      if (!WantsGrad(x)) return;
                      auto* gx = GradOf(x);
                      for (int c = 0; c < cols; ++c)
                        (*gx)[static_cast<size_t>(argmax[c]) * cols + c] +=
                            self.grad[c];
                    });
}

Tensor PiecewiseMaxOverRows(const Tensor& x, int b1, int b2) {
  IMR_CHECK_EQ(x.rank(), 2);
  const int rows = x.shape()[0];
  const int cols = x.shape()[1];
  IMR_CHECK_GE(b1, 0);
  IMR_CHECK_LE(b1, b2);
  IMR_CHECK_LE(b2, rows);
  std::vector<float> out =
      AcquireBufferFill(3 * static_cast<size_t>(cols), 0.0f);
  // argmax = -1 marks an empty segment (output stays 0, no gradient).
  std::vector<int> argmax(3 * static_cast<size_t>(cols), -1);
  const auto& xv = x.data();
  const int bounds[4] = {0, b1, b2, rows};
  for (int seg = 0; seg < 3; ++seg) {
    const int lo = bounds[seg];
    const int hi = bounds[seg + 1];
    if (lo >= hi) continue;
    for (int c = 0; c < cols; ++c) {
      float best = -std::numeric_limits<float>::infinity();
      int best_r = lo;
      for (int r = lo; r < hi; ++r) {
        const float v = xv[static_cast<size_t>(r) * cols + c];
        if (v > best) {
          best = v;
          best_r = r;
        }
      }
      out[static_cast<size_t>(seg) * cols + c] = best;
      argmax[static_cast<size_t>(seg) * cols + c] = best_r;
    }
  }
  return MakeResult({3 * cols}, std::move(out), {x},
                    [x, argmax = std::move(argmax), cols](TensorImpl& self) {
                      if (!WantsGrad(x)) return;
                      auto* gx = GradOf(x);
                      for (size_t i = 0; i < argmax.size(); ++i) {
                        const int r = argmax[i];
                        if (r < 0) continue;
                        const size_t c = i % cols;
                        (*gx)[static_cast<size_t>(r) * cols + c] +=
                            self.grad[i];
                      }
                    });
}

Tensor Softmax(const Tensor& x) {
  const int rows = x.rows();
  const int cols = x.cols();
  std::vector<float> out = AcquireBuffer(x.size());
  simd::Active().softmax_rows(x.data().data(), out.data(), rows, cols);
  return MakeResult(
      x.shape(), std::move(out), {x}, [x, rows, cols](TensorImpl& self) {
        if (!WantsGrad(x)) return;
        auto* gx = GradOf(x);
        for (int r = 0; r < rows; ++r) {
          const float* y = self.value.data() + static_cast<size_t>(r) * cols;
          const float* gy = self.grad.data() + static_cast<size_t>(r) * cols;
          float dot = 0.0f;
          for (int c = 0; c < cols; ++c) dot += y[c] * gy[c];
          float* grow = gx->data() + static_cast<size_t>(r) * cols;
          for (int c = 0; c < cols; ++c) grow[c] += y[c] * (gy[c] - dot);
        }
      });
}

Tensor LogSoftmax(const Tensor& x) {
  const int rows = x.rows();
  const int cols = x.cols();
  std::vector<float> out = AcquireBuffer(x.size());
  simd::Active().log_softmax_rows(x.data().data(), out.data(), rows, cols);
  return MakeResult(
      x.shape(), std::move(out), {x}, [x, rows, cols](TensorImpl& self) {
        if (!WantsGrad(x)) return;
        auto* gx = GradOf(x);
        for (int r = 0; r < rows; ++r) {
          const float* y = self.value.data() + static_cast<size_t>(r) * cols;
          const float* gy = self.grad.data() + static_cast<size_t>(r) * cols;
          float sum_g = 0.0f;
          for (int c = 0; c < cols; ++c) sum_g += gy[c];
          float* grow = gx->data() + static_cast<size_t>(r) * cols;
          for (int c = 0; c < cols; ++c)
            grow[c] += gy[c] - std::exp(y[c]) * sum_g;
        }
      });
}

Tensor CrossEntropyLoss(const Tensor& logits,
                        const std::vector<int>& labels) {
  const int rows = logits.rows();
  const int cols = logits.cols();
  IMR_CHECK_EQ(static_cast<size_t>(rows), labels.size());
  // Fused log-softmax + NLL: one softmax pass produces the probabilities the
  // backward needs, and the loss reads only the label entries — no LogSoftmax
  // node, no Gather node, no second pass over the logits. The probabilities
  // ride along in the closure as pooled scratch.
  PooledFloats probs(AcquireBuffer(logits.size()));
  simd::Active().softmax_rows(logits.data().data(), probs.data(), rows, cols);
  float loss = 0.0f;
  for (int r = 0; r < rows; ++r) {
    const int label = labels[r];
    IMR_CHECK_GE(label, 0);
    IMR_CHECK_LT(label, cols);
    const float p = probs[static_cast<size_t>(r) * cols + label];
    loss -= std::log(std::max(p, 1e-12f));
  }
  loss /= static_cast<float>(rows);
  std::vector<float> out = AcquireBuffer(1);
  out[0] = loss;
  return MakeResult(
      {1}, std::move(out), {logits},
      [logits, labels, probs = std::move(probs), rows,
       cols](TensorImpl& self) {
        if (!WantsGrad(logits)) return;
        auto* gx = GradOf(logits);
        const float scale = self.grad[0] / static_cast<float>(rows);
        for (int r = 0; r < rows; ++r) {
          const float* __restrict prow =
              probs.data() + static_cast<size_t>(r) * cols;
          float* __restrict grow = gx->data() + static_cast<size_t>(r) * cols;
          for (int c = 0; c < cols; ++c) grow[c] += scale * prow[c];
          grow[labels[r]] -= scale;
        }
      });
}

Tensor Conv1dSame(const Tensor& x, const Tensor& weight, const Tensor& bias,
                  int window) {
  IMR_CHECK_EQ(x.rank(), 2);
  IMR_CHECK_EQ(weight.rank(), 2);
  IMR_CHECK_EQ(window % 2, 1);
  const int time = x.shape()[0];
  const int dim = x.shape()[1];
  const int filters = weight.shape()[0];
  IMR_CHECK_EQ(weight.shape()[1], window * dim);
  IMR_CHECK_EQ(static_cast<int>(bias.size()), filters);
  const int half = window / 2;

  std::vector<float> out =
      AcquireBuffer(static_cast<size_t>(time) * filters);
  const float* xv = x.data().data();
  const float* wv = weight.data().data();
  const float* bv = bias.data().data();
  // Each output row t is produced wholly by the chunk that owns t, with the
  // same per-row arithmetic as the scalar kernel, so the result is
  // bit-identical at any thread count.
  const int64_t conv_work =
      static_cast<int64_t>(time) * filters * window * dim;
  auto forward_rows = [&](int64_t t_lo, int64_t t_hi) {
    for (int64_t t = t_lo; t < t_hi; ++t) {
      float* orow = out.data() + static_cast<size_t>(t) * filters;
      for (int f = 0; f < filters; ++f) orow[f] = bv[f];
      for (int w = 0; w < window; ++w) {
        const int src = static_cast<int>(t) + w - half;
        if (src < 0 || src >= time) continue;  // zero padding
        const float* xrow = xv + static_cast<size_t>(src) * dim;
        // weight layout: [f][w*dim + d]
        for (int f = 0; f < filters; ++f) {
          const float* wrow = wv + static_cast<size_t>(f) * window * dim +
                              static_cast<size_t>(w) * dim;
          float acc = 0.0f;
          for (int d = 0; d < dim; ++d) acc += xrow[d] * wrow[d];
          orow[f] += acc;
        }
      }
    }
  };
  if (conv_work >= kMatMulParallelFlops && time >= 2) {
    util::GlobalPool().ParallelFor(
        0, time,
        RowGrain(static_cast<int64_t>(filters) * window * dim),
        forward_rows);
  } else {
    forward_rows(0, time);
  }
  return MakeResult(
      {time, filters}, std::move(out), {x, weight, bias},
      [x, weight, bias, window, time, dim, filters, half](TensorImpl& self) {
        // Backward runs as three owner-computes passes (bias and weight
        // sharded over filters, input sharded over source rows). Each pass
        // reproduces the scalar kernel's per-element accumulation sequence
        // — t ascends for every (f), (f,w,d) and (src,d) destination — so
        // gradients are bit-identical at any thread count.
        const float* gout = self.grad.data();
        const float* xv = x.data().data();
        const float* wv = weight.data().data();
        const int64_t conv_work =
            static_cast<int64_t>(time) * filters * window * dim;
        const bool parallel = conv_work >= kMatMulParallelFlops;
        if (WantsGrad(bias)) {
          auto* gb = GradOf(bias);
          float* gbv = gb->data();
          for (int t = 0; t < time; ++t) {
            const float* grow = gout + static_cast<size_t>(t) * filters;
            for (int f = 0; f < filters; ++f) gbv[f] += grow[f];
          }
        }
        if (WantsGrad(weight)) {
          auto* gw = GradOf(weight);
          float* gwv = gw->data();
          auto gw_filters = [&](int64_t f_lo, int64_t f_hi) {
            for (int t = 0; t < time; ++t) {
              const float* grow = gout + static_cast<size_t>(t) * filters;
              for (int w = 0; w < window; ++w) {
                const int src = t + w - half;
                if (src < 0 || src >= time) continue;
                const float* xrow = xv + static_cast<size_t>(src) * dim;
                for (int64_t f = f_lo; f < f_hi; ++f) {
                  const float g = grow[f];
                  if (g == 0.0f) continue;
                  float* gwrow = gwv + static_cast<size_t>(f) * window * dim +
                                 static_cast<size_t>(w) * dim;
                  for (int d = 0; d < dim; ++d) gwrow[d] += g * xrow[d];
                }
              }
            }
          };
          if (parallel && filters >= 2) {
            util::GlobalPool().ParallelFor(
                0, filters,
                RowGrain(static_cast<int64_t>(time) * window * dim),
                gw_filters);
          } else {
            gw_filters(0, filters);
          }
        }
        if (WantsGrad(x)) {
          auto* gx = GradOf(x);
          float* gxv = gx->data();
          // For a fixed src row, contributions arrive from (t, w) pairs
          // with t = src - w + half; walking w DOWN walks t UP, matching
          // the scalar kernel's t-ascending order into gx[src, d].
          auto gx_rows = [&](int64_t src_lo, int64_t src_hi) {
            for (int64_t src = src_lo; src < src_hi; ++src) {
              float* gxrow = gxv + static_cast<size_t>(src) * dim;
              for (int w = window - 1; w >= 0; --w) {
                const int t = static_cast<int>(src) - w + half;
                if (t < 0 || t >= time) continue;
                const float* grow = gout + static_cast<size_t>(t) * filters;
                for (int f = 0; f < filters; ++f) {
                  const float g = grow[f];
                  if (g == 0.0f) continue;
                  const float* wrow = wv +
                                      static_cast<size_t>(f) * window * dim +
                                      static_cast<size_t>(w) * dim;
                  for (int d = 0; d < dim; ++d) gxrow[d] += g * wrow[d];
                }
              }
            }
          };
          if (parallel && time >= 2) {
            util::GlobalPool().ParallelFor(
                0, time,
                RowGrain(static_cast<int64_t>(filters) * window * dim),
                gx_rows);
          } else {
            gx_rows(0, time);
          }
        }
      });
}

}  // namespace imr::tensor
