#include "tensor/simd/dispatch.h"

#include <atomic>
#include <cstdlib>

#include "tensor/tensor.h"
#include "util/logging.h"

namespace imr::tensor::simd {

// Defined in the per-ISA translation units. Each returns nullptr when the
// ISA is not compiled into this build; entries inside a returned table may
// be null and inherit the scalar reference via MergeOverScalar.
const Kernels* ScalarKernels();
const Kernels* Sse2Kernels();
const Kernels* Avx2Kernels();
const Kernels* NeonKernels();

namespace {

// Dispatch state. Written at startup (env), by flag parsing, or by scoped
// test/bench pins; read on every op entry — relaxed atomics keep the reads
// free and TSan-clean. -1 means "no pin".
std::atomic<int> g_pinned_backend{-1};
std::atomic<bool> g_vectorized_training{false};

constexpr int kBackendCount = 4;

bool CpuSupports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;  // NEON is architectural on AArch64.
#else
      return false;
#endif
  }
  return false;
}

// Returns true and sets *backend / *is_auto on a recognized name. Shared by
// SetBackendByName and the env parsing in the Registry constructor (which
// must not re-enter the public API while the registry static initializes).
bool ParseBackendName(const std::string& name, Backend* backend,
                      bool* is_auto) {
  *is_auto = false;
  if (name.empty() || name == "auto") {
    *is_auto = true;
    return true;
  }
  if (name == "scalar") {
    *backend = Backend::kScalar;
  } else if (name == "sse2") {
    *backend = Backend::kSse2;
  } else if (name == "avx2") {
    *backend = Backend::kAvx2;
  } else if (name == "neon") {
    *backend = Backend::kNeon;
  } else {
    return false;
  }
  return true;
}

const Kernels* RawTable(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return ScalarKernels();
    case Backend::kSse2:
      return Sse2Kernels();
    case Backend::kAvx2:
      return Avx2Kernels();
    case Backend::kNeon:
      return NeonKernels();
  }
  return nullptr;
}

Kernels MergeOverScalar(Backend backend, const Kernels& overlay) {
  Kernels merged = *ScalarKernels();
  merged.backend = backend;
  if (overlay.add) merged.add = overlay.add;
  if (overlay.sub) merged.sub = overlay.sub;
  if (overlay.mul) merged.mul = overlay.mul;
  if (overlay.scale) merged.scale = overlay.scale;
  if (overlay.tanh) merged.tanh = overlay.tanh;
  if (overlay.affine_tanh_finish)
    merged.affine_tanh_finish = overlay.affine_tanh_finish;
  if (overlay.matmul_panel_dot)
    merged.matmul_panel_dot = overlay.matmul_panel_dot;
  if (overlay.matmul_ikj) merged.matmul_ikj = overlay.matmul_ikj;
  if (overlay.softmax_rows) merged.softmax_rows = overlay.softmax_rows;
  if (overlay.log_softmax_rows)
    merged.log_softmax_rows = overlay.log_softmax_rows;
  if (overlay.gemm_s8s32) merged.gemm_s8s32 = overlay.gemm_s8s32;
  if (overlay.ann_dot_many) merged.ann_dot_many = overlay.ann_dot_many;
  if (overlay.ann_l2sqr_many) merged.ann_l2sqr_many = overlay.ann_l2sqr_many;
  if (overlay.ann_cosine_many)
    merged.ann_cosine_many = overlay.ann_cosine_many;
  if (overlay.ann_dot_batch) merged.ann_dot_batch = overlay.ann_dot_batch;
  return merged;
}

struct Registry {
  Kernels tables[kBackendCount];
  bool supported[kBackendCount] = {false, false, false, false};
  Backend best = Backend::kScalar;

  Registry() {
    for (int i = 0; i < kBackendCount; ++i) {
      const Backend backend = static_cast<Backend>(i);
      const Kernels* raw = RawTable(backend);
      if (raw == nullptr || !CpuSupports(backend)) continue;
      tables[i] = MergeOverScalar(backend, *raw);
      supported[i] = true;
      // Preference order matches the enum: scalar < sse2 < avx2; NEON only
      // exists where the x86 tiers do not, so "highest supported" is right
      // on both architectures.
      best = backend;
    }
    ApplyEnvironment();
  }

  void ApplyEnvironment() {
    if (const char* env = std::getenv("IMR_KERNEL_BACKEND")) {
      Backend backend = Backend::kScalar;
      bool is_auto = false;
      if (!ParseBackendName(env, &backend, &is_auto)) {
        IMR_LOG(Warning) << "IMR_KERNEL_BACKEND=" << env
                         << " ignored: unknown backend name";
      } else if (!is_auto && !supported[static_cast<int>(backend)]) {
        IMR_LOG(Warning) << "IMR_KERNEL_BACKEND=" << env
                         << " ignored: backend not supported on this host";
      } else if (!is_auto) {
        g_pinned_backend.store(static_cast<int>(backend),
                               std::memory_order_relaxed);
      }
    }
    if (const char* env = std::getenv("IMR_VECTORIZED_TRAINING")) {
      const std::string value(env);
      g_vectorized_training.store(value == "1" || value == "true" ||
                                      value == "on",
                                  std::memory_order_relaxed);
    }
  }
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

Backend DetectBestBackend() { return GetRegistry().best; }

bool BackendSupported(Backend backend) {
  const int index = static_cast<int>(backend);
  if (index < 0 || index >= kBackendCount) return false;
  return GetRegistry().supported[index];
}

std::vector<Backend> SupportedBackends() {
  std::vector<Backend> result;
  for (int i = 0; i < kBackendCount; ++i) {
    if (GetRegistry().supported[i]) result.push_back(static_cast<Backend>(i));
  }
  return result;
}

const Kernels& KernelsFor(Backend backend) {
  IMR_CHECK(BackendSupported(backend));
  return GetRegistry().tables[static_cast<int>(backend)];
}

Backend ActiveEvalBackend() {
  // Touch the registry FIRST: its constructor applies the
  // IMR_KERNEL_BACKEND environment pin, so reading g_pinned_backend
  // before it exists would misreport the backend (and resolve the wrong
  // kernel table) when this is the process's first dispatch call.
  const Registry& registry = GetRegistry();
  const int pinned = g_pinned_backend.load(std::memory_order_relaxed);
  if (pinned >= 0) return static_cast<Backend>(pinned);
  return registry.best;
}

bool EvalBackendPinned() {
  GetRegistry();  // applies the environment pin on first use
  return g_pinned_backend.load(std::memory_order_relaxed) >= 0;
}

const Kernels& EvalKernels() { return KernelsFor(ActiveEvalBackend()); }

const Kernels& TrainKernels() {
  if (g_vectorized_training.load(std::memory_order_relaxed))
    return EvalKernels();
  return KernelsFor(Backend::kScalar);
}

const Kernels& Active() {
  return GradModeEnabled() ? TrainKernels() : EvalKernels();
}

util::Status SetBackendByName(const std::string& name) {
  Backend backend = Backend::kScalar;
  bool is_auto = false;
  if (!ParseBackendName(name, &backend, &is_auto)) {
    return util::InvalidArgument("unknown kernel backend '" + name +
                                 "' (want auto|scalar|sse2|avx2|neon)");
  }
  if (is_auto) {
    g_pinned_backend.store(-1, std::memory_order_relaxed);
    return util::OkStatus();
  }
  if (!BackendSupported(backend)) {
    return util::FailedPrecondition(std::string("kernel backend '") +
                                    BackendName(backend) +
                                    "' is not supported on this host/build");
  }
  g_pinned_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
  return util::OkStatus();
}

void SetVectorizedTraining(bool on) {
  g_vectorized_training.store(on, std::memory_order_relaxed);
}

bool VectorizedTraining() {
  return g_vectorized_training.load(std::memory_order_relaxed);
}

ScopedEvalBackend::ScopedEvalBackend(Backend backend)
    : previous_pin_(g_pinned_backend.load(std::memory_order_relaxed)) {
  IMR_CHECK(BackendSupported(backend));
  g_pinned_backend.store(static_cast<int>(backend),
                         std::memory_order_relaxed);
}

ScopedEvalBackend::~ScopedEvalBackend() {
  g_pinned_backend.store(previous_pin_, std::memory_order_relaxed);
}

}  // namespace imr::tensor::simd
