// NEON stub backend for AArch64. Only the elementwise kernels are
// vectorized so far; every other entry is left null and inherits the
// scalar reference through the dispatch merge. The table registers itself
// exactly like the x86 tiers, so filling in tanh / matmul later is purely
// additive. On non-ARM builds this TU compiles to a null registration.
#include "tensor/simd/dispatch.h"

#if defined(__ARM_NEON) && defined(__aarch64__)

#include <arm_neon.h>

namespace imr::tensor::simd {
namespace {

void AddNeon(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void SubNeon(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void MulNeon(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleNeon(const float* a, float s, float* out, size_t n) {
  const float32x4_t sv = vdupq_n_f32(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), sv));
  }
  for (; i < n; ++i) out[i] = a[i] * s;
}

const Kernels kNeonTable = {
    Backend::kNeon,
    AddNeon,
    SubNeon,
    MulNeon,
    ScaleNeon,
    nullptr,  // tanh -> scalar reference
    nullptr,  // affine_tanh_finish
    nullptr,  // matmul_panel_dot
    nullptr,  // matmul_ikj
    nullptr,  // softmax_rows
    nullptr,  // log_softmax_rows
    nullptr,  // gemm_s8s32
    nullptr,  // ann_dot_many -> scalar reference
    nullptr,  // ann_l2sqr_many
    nullptr,  // ann_cosine_many
    nullptr,  // ann_dot_batch
};

}  // namespace

const Kernels* NeonKernels() { return &kNeonTable; }

}  // namespace imr::tensor::simd

#else  // !__ARM_NEON

namespace imr::tensor::simd {
const Kernels* NeonKernels() { return nullptr; }
}  // namespace imr::tensor::simd

#endif
