// SSE2 kernels (4-lane, no FMA — baseline ISA on x86-64, so this TU needs
// no special compile flags there). Evaluates the same vec_math.h
// polynomials as AVX2 with mul+add instead of fused multiply-add; the
// documented error bounds in vec_math.h cover both evaluation schemes.
// Intrinsics are confined to src/tensor/simd/ (imr_lint raw-intrinsics).
#include "tensor/simd/dispatch.h"
#include "tensor/simd/vec_math.h"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(__ARM_NEON))

#include <emmintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace imr::tensor::simd {
namespace {

inline __m128 Tanh4(__m128 x) {
  const __m128 clamp = _mm_set1_ps(kTanhClamp);
  x = _mm_max_ps(_mm_min_ps(x, clamp), _mm_sub_ps(_mm_setzero_ps(), clamp));
  const __m128 x2 = _mm_mul_ps(x, x);
  __m128 p = _mm_set1_ps(kTanhAlpha[6]);
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha[5]));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha[4]));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha[3]));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha[2]));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha[1]));
  p = _mm_add_ps(_mm_mul_ps(p, x2), _mm_set1_ps(kTanhAlpha[0]));
  p = _mm_mul_ps(p, x);
  __m128 q = _mm_set1_ps(kTanhBeta[3]);
  q = _mm_add_ps(_mm_mul_ps(q, x2), _mm_set1_ps(kTanhBeta[2]));
  q = _mm_add_ps(_mm_mul_ps(q, x2), _mm_set1_ps(kTanhBeta[1]));
  q = _mm_add_ps(_mm_mul_ps(q, x2), _mm_set1_ps(kTanhBeta[0]));
  return _mm_div_ps(p, q);
}

// floor() for the exp range reduction without SSE4.1 _mm_floor_ps: truncate
// toward zero, then subtract 1 where truncation rounded up (negative
// non-integers).
inline __m128 Floor4(__m128 x) {
  const __m128 t = _mm_cvtepi32_ps(_mm_cvttps_epi32(x));
  const __m128 too_big = _mm_cmpgt_ps(t, x);
  return _mm_sub_ps(t, _mm_and_ps(too_big, _mm_set1_ps(1.0f)));
}

inline __m128 Exp4(__m128 x) {
  x = _mm_min_ps(x, _mm_set1_ps(kExpHi));
  x = _mm_max_ps(x, _mm_set1_ps(kExpLo));
  __m128 fx = _mm_add_ps(_mm_mul_ps(x, _mm_set1_ps(kLog2E)),
                         _mm_set1_ps(0.5f));
  fx = Floor4(fx);
  x = _mm_sub_ps(x, _mm_mul_ps(fx, _mm_set1_ps(kExpC1)));
  x = _mm_sub_ps(x, _mm_mul_ps(fx, _mm_set1_ps(kExpC2)));
  const __m128 z = _mm_mul_ps(x, x);
  __m128 y = _mm_set1_ps(kExpP[0]);
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(kExpP[1]));
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(kExpP[2]));
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(kExpP[3]));
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(kExpP[4]));
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(kExpP[5]));
  y = _mm_add_ps(_mm_add_ps(_mm_mul_ps(y, z), x), _mm_set1_ps(1.0f));
  const __m128i n = _mm_cvttps_epi32(fx);
  const __m128i pow2n =
      _mm_slli_epi32(_mm_add_epi32(n, _mm_set1_epi32(127)), 23);
  return _mm_mul_ps(y, _mm_castsi128_ps(pow2n));
}

inline float Hsum4(__m128 v) {
  v = _mm_add_ps(v, _mm_movehl_ps(v, v));
  v = _mm_add_ss(v, _mm_shuffle_ps(v, v, 0x55));
  return _mm_cvtss_f32(v);
}

inline int32_t Hsum4i(__m128i v) {
  v = _mm_add_epi32(v, _mm_unpackhi_epi64(v, v));
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, 0x55));
  return _mm_cvtsi128_si32(v);
}

void AddSse2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i,
                  _mm_add_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void SubSse2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i,
                  _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void MulSse2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i,
                  _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleSse2(const float* a, float s, float* out, size_t n) {
  const __m128 sv = _mm_set1_ps(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i, _mm_mul_ps(_mm_loadu_ps(a + i), sv));
  }
  for (; i < n; ++i) out[i] = a[i] * s;
}

void TanhSse2(const float* x, float* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i, Tanh4(_mm_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] = TanhApprox(x[i]);
}

void AffineTanhFinishSse2(float* inout, const float* bias, int rows,
                          int cols) {
  for (int r = 0; r < rows; ++r) {
    float* orow = inout + static_cast<size_t>(r) * cols;
    int c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m128 v =
          _mm_add_ps(_mm_loadu_ps(orow + c), _mm_loadu_ps(bias + c));
      _mm_storeu_ps(orow + c, Tanh4(v));
    }
    for (; c < cols; ++c) orow[c] = TanhApprox(orow[c] + bias[c]);
  }
}

void MatMulPanelDotSse2(const float* av, const float* bt, float* out,
                        int64_t row_lo, int64_t row_hi, int inner, int cols) {
  for (int64_t i = row_lo; i < row_hi; ++i) {
    const float* arow = av + static_cast<size_t>(i) * inner;
    float* orow = out + static_cast<size_t>(i) * cols;
    int j = 0;
    for (; j + 2 <= cols; j += 2) {
      const float* b0 = bt + static_cast<size_t>(j + 0) * inner;
      const float* b1 = bt + static_cast<size_t>(j + 1) * inner;
      __m128 acc0 = _mm_setzero_ps();
      __m128 acc1 = _mm_setzero_ps();
      int k = 0;
      for (; k + 4 <= inner; k += 4) {
        const __m128 a4 = _mm_loadu_ps(arow + k);
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(a4, _mm_loadu_ps(b0 + k)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(a4, _mm_loadu_ps(b1 + k)));
      }
      float s0 = Hsum4(acc0);
      float s1 = Hsum4(acc1);
      for (; k < inner; ++k) {
        const float aval = arow[k];
        s0 += aval * b0[k];
        s1 += aval * b1[k];
      }
      orow[j + 0] = s0;
      orow[j + 1] = s1;
    }
    for (; j < cols; ++j) {
      const float* brow = bt + static_cast<size_t>(j) * inner;
      __m128 acc = _mm_setzero_ps();
      int k = 0;
      for (; k + 4 <= inner; k += 4) {
        acc = _mm_add_ps(acc,
                         _mm_mul_ps(_mm_loadu_ps(arow + k),
                                    _mm_loadu_ps(brow + k)));
      }
      float s = Hsum4(acc);
      for (; k < inner; ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
}

void MatMulIkjSse2(const float* av, const float* bv, float* out, int rows,
                   int inner, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* arow = av + static_cast<size_t>(i) * inner;
    float* orow = out + static_cast<size_t>(i) * cols;
    for (int k = 0; k < inner; ++k) {
      const float aval = arow[k];
      if (aval == 0.0f) continue;
      const float* brow = bv + static_cast<size_t>(k) * cols;
      const __m128 a4 = _mm_set1_ps(aval);
      int j = 0;
      for (; j + 4 <= cols; j += 4) {
        _mm_storeu_ps(orow + j,
                      _mm_add_ps(_mm_loadu_ps(orow + j),
                                 _mm_mul_ps(a4, _mm_loadu_ps(brow + j))));
      }
      for (; j < cols; ++j) orow[j] += aval * brow[j];
    }
  }
}

inline float RowMaxSse2(const float* row, int cols) {
  int c = 0;
  __m128 m4 = _mm_set1_ps(-std::numeric_limits<float>::infinity());
  for (; c + 4 <= cols; c += 4) {
    m4 = _mm_max_ps(m4, _mm_loadu_ps(row + c));
  }
  m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
  m4 = _mm_max_ss(m4, _mm_shuffle_ps(m4, m4, 0x55));
  float max_v = _mm_cvtss_f32(m4);
  for (; c < cols; ++c) max_v = std::max(max_v, row[c]);
  return max_v;
}

void SoftmaxRowsSse2(const float* in, float* out, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* irow = in + static_cast<size_t>(r) * cols;
    float* orow = out + static_cast<size_t>(r) * cols;
    const float max_v = RowMaxSse2(irow, cols);
    const __m128 max4 = _mm_set1_ps(max_v);
    __m128 sum4 = _mm_setzero_ps();
    int c = 0;
    for (; c + 4 <= cols; c += 4) {
      const __m128 e = Exp4(_mm_sub_ps(_mm_loadu_ps(irow + c), max4));
      _mm_storeu_ps(orow + c, e);
      sum4 = _mm_add_ps(sum4, e);
    }
    float denom = Hsum4(sum4);
    for (; c < cols; ++c) {
      orow[c] = ExpApprox(irow[c] - max_v);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    const __m128 inv4 = _mm_set1_ps(inv);
    c = 0;
    for (; c + 4 <= cols; c += 4) {
      _mm_storeu_ps(orow + c, _mm_mul_ps(_mm_loadu_ps(orow + c), inv4));
    }
    for (; c < cols; ++c) orow[c] *= inv;
  }
}

void LogSoftmaxRowsSse2(const float* in, float* out, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* irow = in + static_cast<size_t>(r) * cols;
    float* orow = out + static_cast<size_t>(r) * cols;
    const float max_v = RowMaxSse2(irow, cols);
    const __m128 max4 = _mm_set1_ps(max_v);
    __m128 sum4 = _mm_setzero_ps();
    int c = 0;
    for (; c + 4 <= cols; c += 4) {
      sum4 = _mm_add_ps(sum4,
                        Exp4(_mm_sub_ps(_mm_loadu_ps(irow + c), max4)));
    }
    float denom = Hsum4(sum4);
    for (; c < cols; ++c) denom += ExpApprox(irow[c] - max_v);
    const float log_denom = max_v + std::log(denom);
    const __m128 ld4 = _mm_set1_ps(log_denom);
    c = 0;
    for (; c + 4 <= cols; c += 4) {
      _mm_storeu_ps(orow + c, _mm_sub_ps(_mm_loadu_ps(irow + c), ld4));
    }
    for (; c < cols; ++c) orow[c] = irow[c] - log_denom;
  }
}

// Sign-extend 8-bit lanes to 16-bit with the unpack+shift idiom (SSE2 has
// no _mm_cvtepi8_epi16), then _mm_madd_epi16 pairs into int32. Exact
// integer arithmetic — bit-identical to the scalar reference.
void GemmS8S32Sse2(const int8_t* a, const int8_t* wt, int32_t* out, int rows,
                   int inner, int cols) {
  for (int i = 0; i < rows; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * inner;
    int32_t* orow = out + static_cast<size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) {
      const int8_t* wrow = wt + static_cast<size_t>(j) * inner;
      __m128i acc = _mm_setzero_si128();
      int k = 0;
      for (; k + 16 <= inner; k += 16) {
        const __m128i a8 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(arow + k));
        const __m128i w8 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + k));
        const __m128i a_lo = _mm_srai_epi16(_mm_unpacklo_epi8(a8, a8), 8);
        const __m128i a_hi = _mm_srai_epi16(_mm_unpackhi_epi8(a8, a8), 8);
        const __m128i w_lo = _mm_srai_epi16(_mm_unpacklo_epi8(w8, w8), 8);
        const __m128i w_hi = _mm_srai_epi16(_mm_unpackhi_epi8(w8, w8), 8);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(a_lo, w_lo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(a_hi, w_hi));
      }
      int32_t s = Hsum4i(acc);
      for (; k < inner; ++k) {
        s += static_cast<int32_t>(arow[k]) * static_cast<int32_t>(wrow[k]);
      }
      orow[j] = s;
    }
  }
}

// ANN dot sweep: pairs of base rows share each 4-lane query load.
void AnnDotManySse2(const float* query, const float* base, size_t rows,
                    size_t dim, float* out) {
  size_t r = 0;
  for (; r + 2 <= rows; r += 2) {
    const float* b0 = base + (r + 0) * dim;
    const float* b1 = base + (r + 1) * dim;
    __m128 acc0 = _mm_setzero_ps();
    __m128 acc1 = _mm_setzero_ps();
    size_t k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m128 q4 = _mm_loadu_ps(query + k);
      acc0 = _mm_add_ps(acc0, _mm_mul_ps(q4, _mm_loadu_ps(b0 + k)));
      acc1 = _mm_add_ps(acc1, _mm_mul_ps(q4, _mm_loadu_ps(b1 + k)));
    }
    float s0 = Hsum4(acc0);
    float s1 = Hsum4(acc1);
    for (; k < dim; ++k) {
      const float qv = query[k];
      s0 += qv * b0[k];
      s1 += qv * b1[k];
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
  }
  for (; r < rows; ++r) {
    const float* row = base + r * dim;
    __m128 acc = _mm_setzero_ps();
    size_t k = 0;
    for (; k + 4 <= dim; k += 4) {
      acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(query + k),
                                       _mm_loadu_ps(row + k)));
    }
    float s = Hsum4(acc);
    for (; k < dim; ++k) s += query[k] * row[k];
    out[r] = s;
  }
}

void AnnL2SqrManySse2(const float* query, const float* base, size_t rows,
                      size_t dim, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = base + r * dim;
    __m128 acc = _mm_setzero_ps();
    size_t k = 0;
    for (; k + 4 <= dim; k += 4) {
      const __m128 d =
          _mm_sub_ps(_mm_loadu_ps(query + k), _mm_loadu_ps(row + k));
      acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
    }
    float s = Hsum4(acc);
    for (; k < dim; ++k) {
      const float d = query[k] - row[k];
      s += d * d;
    }
    out[r] = s;
  }
}

void AnnCosineManySse2(const float* query, const float* base,
                       const float* inv_norms, float query_inv_norm,
                       size_t rows, size_t dim, float* out) {
  AnnDotManySse2(query, base, rows, dim, out);
  const __m128 qn4 = _mm_set1_ps(query_inv_norm);
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const __m128 v = _mm_mul_ps(
        _mm_mul_ps(_mm_loadu_ps(out + r), _mm_loadu_ps(inv_norms + r)), qn4);
    _mm_storeu_ps(out + r, v);
  }
  for (; r < rows; ++r) out[r] *= inv_norms[r] * query_inv_norm;
}

void AnnDotBatchSse2(const float* queries, size_t num_queries,
                     const float* base, size_t rows, size_t dim, float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    AnnDotManySse2(queries + q * dim, base, rows, dim, out + q * rows);
  }
}

const Kernels kSse2Table = {
    Backend::kSse2,
    AddSse2,
    SubSse2,
    MulSse2,
    ScaleSse2,
    TanhSse2,
    AffineTanhFinishSse2,
    MatMulPanelDotSse2,
    MatMulIkjSse2,
    SoftmaxRowsSse2,
    LogSoftmaxRowsSse2,
    GemmS8S32Sse2,
    AnnDotManySse2,
    AnnL2SqrManySse2,
    AnnCosineManySse2,
    AnnDotBatchSse2,
};

}  // namespace

const Kernels* Sse2Kernels() { return &kSse2Table; }

}  // namespace imr::tensor::simd

#else  // !__SSE2__

namespace imr::tensor::simd {
const Kernels* Sse2Kernels() { return nullptr; }
}  // namespace imr::tensor::simd

#endif
