// Shared polynomial approximations for the vector transcendental kernels.
//
// Every ISA backend (SSE2, AVX2, NEON) evaluates the SAME polynomials with
// its own intrinsics; the scalar helpers here are used for loop tails so a
// backend's tail elements satisfy the same error bound as its vector lanes.
// The scalar *reference* backend never uses these — it calls std::tanh /
// std::exp and stays the bit-identity baseline for training gates.
//
// Accuracy contract (measured in tests/simd_test.cc, gated there):
//
//   TanhApprox   rational R(x) = x * P(x^2) / Q(x^2) with the clamp below.
//                Max error vs std::tanh(float) <= 8 ULP over [-12, 12] and
//                saturates to R(+-clamp) (within 8 ULP of +-1) outside.
//   ExpApprox    Cephes-style range reduction (x = n*ln2 + r, 2^n * P(r)).
//                Max relative error vs std::exp(float) <= 4 ULP over the
//                range softmax feeds it ([-88, 0] after max-subtraction).
//
// Row reductions built on these (softmax / log-softmax denominators) may
// additionally reassociate the sum, so vector softmax outputs are documented
// as "relative error <= 2^-20 vs the scalar reference", not bit-identical.
#ifndef IMR_TENSOR_SIMD_VEC_MATH_H_
#define IMR_TENSOR_SIMD_VEC_MATH_H_

#include <cmath>
#include <cstdint>
#include <cstring>

namespace imr::tensor::simd {

// tanh rational approximation (the widely used single-precision fit, e.g.
// Eigen's generic_fast_tanh_float): odd polynomial P over even Q in x^2.
// Beyond +-kTanhClamp the float tanh is within an ULP of the clamped value.
inline constexpr float kTanhClamp = 7.90531110763549805f;
// alpha_1, alpha_3, ..., alpha_13 (coefficients of x^1, x^3, ..., x^13 in P).
inline constexpr float kTanhAlpha[7] = {
    4.89352455891786e-03f, 6.37261928875436e-04f,  1.48572235717979e-05f,
    5.12229709037114e-08f, -8.60467152213735e-11f, 2.00018790482477e-13f,
    -2.76076847742355e-16f};
// beta_0, beta_2, beta_4, beta_6 (coefficients of Q in x^2).
inline constexpr float kTanhBeta[4] = {
    4.89352518554385e-03f, 2.26843463243900e-03f, 1.18534705686654e-04f,
    1.19825839466702e-06f};

inline float TanhApprox(float x) {
  if (x > kTanhClamp) x = kTanhClamp;
  if (x < -kTanhClamp) x = -kTanhClamp;
  const float x2 = x * x;
  float p = kTanhAlpha[6];
  p = p * x2 + kTanhAlpha[5];
  p = p * x2 + kTanhAlpha[4];
  p = p * x2 + kTanhAlpha[3];
  p = p * x2 + kTanhAlpha[2];
  p = p * x2 + kTanhAlpha[1];
  p = p * x2 + kTanhAlpha[0];
  p = p * x;
  float q = kTanhBeta[3];
  q = q * x2 + kTanhBeta[2];
  q = q * x2 + kTanhBeta[1];
  q = q * x2 + kTanhBeta[0];
  return p / q;
}

// expf range-reduction constants (Cephes cephes_expf): x = n*ln2 + r with
// ln2 split into a high part (exact in float) and a low correction, then
// e^r by a degree-5 polynomial and 2^n via the exponent field.
inline constexpr float kExpHi = 88.3762626647950f;
inline constexpr float kExpLo = -87.3365478515625f;
inline constexpr float kLog2E = 1.44269504088896341f;
inline constexpr float kExpC1 = 0.693359375f;
inline constexpr float kExpC2 = -2.12194440e-4f;
inline constexpr float kExpP[6] = {1.9875691500e-4f, 1.3981999507e-3f,
                                   8.3334519073e-3f, 4.1665795894e-2f,
                                   1.6666665459e-1f, 5.0000001201e-1f};

inline float ExpApprox(float x) {
  if (x > kExpHi) x = kExpHi;
  if (x < kExpLo) x = kExpLo;
  float fx = std::floor(kLog2E * x + 0.5f);
  x -= fx * kExpC1;
  x -= fx * kExpC2;
  const float z = x * x;
  float y = kExpP[0];
  y = y * x + kExpP[1];
  y = y * x + kExpP[2];
  y = y * x + kExpP[3];
  y = y * x + kExpP[4];
  y = y * x + kExpP[5];
  y = y * z + x + 1.0f;
  // 2^fx by building the float from its exponent bits.
  const int32_t n = static_cast<int32_t>(fx);
  uint32_t bits = static_cast<uint32_t>(n + 127) << 23;
  float pow2n;
  std::memcpy(&pow2n, &bits, sizeof(pow2n));
  return y * pow2n;
}

}  // namespace imr::tensor::simd

#endif  // IMR_TENSOR_SIMD_VEC_MATH_H_
