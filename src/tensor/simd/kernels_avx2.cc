// AVX2+FMA kernels. This translation unit is compiled with -mavx2 -mfma
// (see src/CMakeLists.txt); nothing outside src/tensor/simd/ may touch
// intrinsics (imr_lint raw-intrinsics rule), and this table is only
// reachable after __builtin_cpu_supports("avx2") at dispatch init.
//
// Numerics: tanh/exp evaluate the shared polynomials from vec_math.h with
// FMA; loop tails use the scalar polynomial evaluators so every element of
// a result obeys the same documented error bound. Dot-product reductions
// use 8-lane accumulators (reassociated relative to the scalar reference;
// deterministic for a fixed shape). The int8 GEMM is pure integer
// arithmetic and bit-identical to the scalar reference.
#include "tensor/simd/dispatch.h"
#include "tensor/simd/vec_math.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace imr::tensor::simd {
namespace {

inline __m256 Tanh8(__m256 x) {
  const __m256 clamp = _mm256_set1_ps(kTanhClamp);
  x = _mm256_max_ps(_mm256_min_ps(x, clamp),
                    _mm256_sub_ps(_mm256_setzero_ps(), clamp));
  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 p = _mm256_set1_ps(kTanhAlpha[6]);
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha[5]));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha[4]));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha[3]));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha[2]));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha[1]));
  p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(kTanhAlpha[0]));
  p = _mm256_mul_ps(p, x);
  __m256 q = _mm256_set1_ps(kTanhBeta[3]);
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhBeta[2]));
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhBeta[1]));
  q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(kTanhBeta[0]));
  return _mm256_div_ps(p, q);
}

inline __m256 Exp8(__m256 x) {
  x = _mm256_min_ps(x, _mm256_set1_ps(kExpHi));
  x = _mm256_max_ps(x, _mm256_set1_ps(kExpLo));
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2E),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(kExpC1), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(kExpC2), x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(kExpP[0]);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP[1]));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP[2]));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP[3]));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP[4]));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(kExpP[5]));
  y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, _mm256_set1_ps(1.0f)));
  const __m256i n = _mm256_cvttps_epi32(fx);
  const __m256i pow2n = _mm256_slli_epi32(
      _mm256_add_epi32(n, _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

inline float Hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

inline int32_t HsumEpi32i(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x55));
  return _mm_cvtsi128_si32(s);
}

void AddAvx2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void SubAvx2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void MulAvx2(const float* a, const float* b, float* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleAvx2(const float* a, float s, float* out, size_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), sv));
  }
  for (; i < n; ++i) out[i] = a[i] * s;
}

void TanhAvx2(const float* x, float* out, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, Tanh8(_mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) out[i] = TanhApprox(x[i]);
}

void AffineTanhFinishAvx2(float* inout, const float* bias, int rows,
                          int cols) {
  for (int r = 0; r < rows; ++r) {
    float* orow = inout + static_cast<size_t>(r) * cols;
    int c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256 v = _mm256_add_ps(_mm256_loadu_ps(orow + c),
                                     _mm256_loadu_ps(bias + c));
      _mm256_storeu_ps(orow + c, Tanh8(v));
    }
    for (; c < cols; ++c) orow[c] = TanhApprox(orow[c] + bias[c]);
  }
}

// Packed-panel dot microkernel: 4 B^T rows share each A-row load, 8-lane
// FMA accumulators per dot.
void MatMulPanelDotAvx2(const float* av, const float* bt, float* out,
                        int64_t row_lo, int64_t row_hi, int inner, int cols) {
  for (int64_t i = row_lo; i < row_hi; ++i) {
    const float* arow = av + static_cast<size_t>(i) * inner;
    float* orow = out + static_cast<size_t>(i) * cols;
    int j = 0;
    for (; j + 4 <= cols; j += 4) {
      const float* b0 = bt + static_cast<size_t>(j + 0) * inner;
      const float* b1 = bt + static_cast<size_t>(j + 1) * inner;
      const float* b2 = bt + static_cast<size_t>(j + 2) * inner;
      const float* b3 = bt + static_cast<size_t>(j + 3) * inner;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      int k = 0;
      for (; k + 8 <= inner; k += 8) {
        const __m256 a8 = _mm256_loadu_ps(arow + k);
        acc0 = _mm256_fmadd_ps(a8, _mm256_loadu_ps(b0 + k), acc0);
        acc1 = _mm256_fmadd_ps(a8, _mm256_loadu_ps(b1 + k), acc1);
        acc2 = _mm256_fmadd_ps(a8, _mm256_loadu_ps(b2 + k), acc2);
        acc3 = _mm256_fmadd_ps(a8, _mm256_loadu_ps(b3 + k), acc3);
      }
      float s0 = Hsum8(acc0);
      float s1 = Hsum8(acc1);
      float s2 = Hsum8(acc2);
      float s3 = Hsum8(acc3);
      for (; k < inner; ++k) {
        const float aval = arow[k];
        s0 += aval * b0[k];
        s1 += aval * b1[k];
        s2 += aval * b2[k];
        s3 += aval * b3[k];
      }
      orow[j + 0] = s0;
      orow[j + 1] = s1;
      orow[j + 2] = s2;
      orow[j + 3] = s3;
    }
    for (; j < cols; ++j) {
      const float* brow = bt + static_cast<size_t>(j) * inner;
      __m256 acc = _mm256_setzero_ps();
      int k = 0;
      for (; k + 8 <= inner; k += 8) {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(arow + k),
                              _mm256_loadu_ps(brow + k), acc);
      }
      float s = Hsum8(acc);
      for (; k < inner; ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
}

void MatMulIkjAvx2(const float* av, const float* bv, float* out, int rows,
                   int inner, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* arow = av + static_cast<size_t>(i) * inner;
    float* orow = out + static_cast<size_t>(i) * cols;
    for (int k = 0; k < inner; ++k) {
      const float aval = arow[k];
      if (aval == 0.0f) continue;
      const float* brow = bv + static_cast<size_t>(k) * cols;
      const __m256 a8 = _mm256_set1_ps(aval);
      int j = 0;
      for (; j + 8 <= cols; j += 8) {
        _mm256_storeu_ps(orow + j,
                         _mm256_fmadd_ps(a8, _mm256_loadu_ps(brow + j),
                                         _mm256_loadu_ps(orow + j)));
      }
      for (; j < cols; ++j) orow[j] += aval * brow[j];
    }
  }
}

inline float RowMax(const float* row, int cols) {
  int c = 0;
  __m256 m8 = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  for (; c + 8 <= cols; c += 8) {
    m8 = _mm256_max_ps(m8, _mm256_loadu_ps(row + c));
  }
  const __m128 lo = _mm256_castps256_ps128(m8);
  const __m128 hi = _mm256_extractf128_ps(m8, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x55));
  float max_v = _mm_cvtss_f32(m);
  for (; c < cols; ++c) max_v = std::max(max_v, row[c]);
  return max_v;
}

void SoftmaxRowsAvx2(const float* in, float* out, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* irow = in + static_cast<size_t>(r) * cols;
    float* orow = out + static_cast<size_t>(r) * cols;
    const float max_v = RowMax(irow, cols);
    const __m256 max8 = _mm256_set1_ps(max_v);
    __m256 sum8 = _mm256_setzero_ps();
    int c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256 e = Exp8(_mm256_sub_ps(_mm256_loadu_ps(irow + c), max8));
      _mm256_storeu_ps(orow + c, e);
      sum8 = _mm256_add_ps(sum8, e);
    }
    float denom = Hsum8(sum8);
    for (; c < cols; ++c) {
      orow[c] = ExpApprox(irow[c] - max_v);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    const __m256 inv8 = _mm256_set1_ps(inv);
    c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(orow + c,
                       _mm256_mul_ps(_mm256_loadu_ps(orow + c), inv8));
    }
    for (; c < cols; ++c) orow[c] *= inv;
  }
}

void LogSoftmaxRowsAvx2(const float* in, float* out, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* irow = in + static_cast<size_t>(r) * cols;
    float* orow = out + static_cast<size_t>(r) * cols;
    const float max_v = RowMax(irow, cols);
    const __m256 max8 = _mm256_set1_ps(max_v);
    __m256 sum8 = _mm256_setzero_ps();
    int c = 0;
    for (; c + 8 <= cols; c += 8) {
      sum8 = _mm256_add_ps(
          sum8, Exp8(_mm256_sub_ps(_mm256_loadu_ps(irow + c), max8)));
    }
    float denom = Hsum8(sum8);
    for (; c < cols; ++c) denom += ExpApprox(irow[c] - max_v);
    const float log_denom = max_v + std::log(denom);
    const __m256 ld8 = _mm256_set1_ps(log_denom);
    c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(orow + c,
                       _mm256_sub_ps(_mm256_loadu_ps(irow + c), ld8));
    }
    for (; c < cols; ++c) orow[c] = irow[c] - log_denom;
  }
}

// 16 int8 lanes sign-extended to 16-bit, _mm256_madd_epi16 pairs into 8
// int32 accumulators. Exact integer arithmetic, so bit-identical to the
// scalar reference for any summation order.
void GemmS8S32Avx2(const int8_t* a, const int8_t* wt, int32_t* out, int rows,
                   int inner, int cols) {
  for (int i = 0; i < rows; ++i) {
    const int8_t* arow = a + static_cast<size_t>(i) * inner;
    int32_t* orow = out + static_cast<size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) {
      const int8_t* wrow = wt + static_cast<size_t>(j) * inner;
      __m256i acc = _mm256_setzero_si256();
      int k = 0;
      for (; k + 16 <= inner; k += 16) {
        const __m256i a16 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(arow + k)));
        const __m256i w16 = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(wrow + k)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, w16));
      }
      int32_t s = HsumEpi32i(acc);
      for (; k < inner; ++k) {
        s += static_cast<int32_t>(arow[k]) * static_cast<int32_t>(wrow[k]);
      }
      orow[j] = s;
    }
  }
}

// ANN dot sweep: 4 base rows share each 8-lane query load (the panel-dot
// microkernel shape with the roles of A and B^T swapped).
void AnnDotManyAvx2(const float* query, const float* base, size_t rows,
                    size_t dim, float* out) {
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    const float* b0 = base + (r + 0) * dim;
    const float* b1 = base + (r + 1) * dim;
    const float* b2 = base + (r + 2) * dim;
    const float* b3 = base + (r + 3) * dim;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    size_t k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 q8 = _mm256_loadu_ps(query + k);
      acc0 = _mm256_fmadd_ps(q8, _mm256_loadu_ps(b0 + k), acc0);
      acc1 = _mm256_fmadd_ps(q8, _mm256_loadu_ps(b1 + k), acc1);
      acc2 = _mm256_fmadd_ps(q8, _mm256_loadu_ps(b2 + k), acc2);
      acc3 = _mm256_fmadd_ps(q8, _mm256_loadu_ps(b3 + k), acc3);
    }
    float s0 = Hsum8(acc0);
    float s1 = Hsum8(acc1);
    float s2 = Hsum8(acc2);
    float s3 = Hsum8(acc3);
    for (; k < dim; ++k) {
      const float qv = query[k];
      s0 += qv * b0[k];
      s1 += qv * b1[k];
      s2 += qv * b2[k];
      s3 += qv * b3[k];
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < rows; ++r) {
    const float* row = base + r * dim;
    __m256 acc = _mm256_setzero_ps();
    size_t k = 0;
    for (; k + 8 <= dim; k += 8) {
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(query + k),
                            _mm256_loadu_ps(row + k), acc);
    }
    float s = Hsum8(acc);
    for (; k < dim; ++k) s += query[k] * row[k];
    out[r] = s;
  }
}

void AnnL2SqrManyAvx2(const float* query, const float* base, size_t rows,
                      size_t dim, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* row = base + r * dim;
    __m256 acc = _mm256_setzero_ps();
    size_t k = 0;
    for (; k + 8 <= dim; k += 8) {
      const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(query + k),
                                     _mm256_loadu_ps(row + k));
      acc = _mm256_fmadd_ps(d, d, acc);
    }
    float s = Hsum8(acc);
    for (; k < dim; ++k) {
      const float d = query[k] - row[k];
      s += d * d;
    }
    out[r] = s;
  }
}

void AnnCosineManyAvx2(const float* query, const float* base,
                       const float* inv_norms, float query_inv_norm,
                       size_t rows, size_t dim, float* out) {
  AnnDotManyAvx2(query, base, rows, dim, out);
  const __m256 qn8 = _mm256_set1_ps(query_inv_norm);
  size_t r = 0;
  for (; r + 8 <= rows; r += 8) {
    const __m256 v = _mm256_mul_ps(
        _mm256_mul_ps(_mm256_loadu_ps(out + r), _mm256_loadu_ps(inv_norms + r)),
        qn8);
    _mm256_storeu_ps(out + r, v);
  }
  for (; r < rows; ++r) out[r] *= inv_norms[r] * query_inv_norm;
}

void AnnDotBatchAvx2(const float* queries, size_t num_queries,
                     const float* base, size_t rows, size_t dim, float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    AnnDotManyAvx2(queries + q * dim, base, rows, dim, out + q * rows);
  }
}

const Kernels kAvx2Table = {
    Backend::kAvx2,
    AddAvx2,
    SubAvx2,
    MulAvx2,
    ScaleAvx2,
    TanhAvx2,
    AffineTanhFinishAvx2,
    MatMulPanelDotAvx2,
    MatMulIkjAvx2,
    SoftmaxRowsAvx2,
    LogSoftmaxRowsAvx2,
    GemmS8S32Avx2,
    AnnDotManyAvx2,
    AnnL2SqrManyAvx2,
    AnnCosineManyAvx2,
    AnnDotBatchAvx2,
};

}  // namespace

const Kernels* Avx2Kernels() { return &kAvx2Table; }

}  // namespace imr::tensor::simd

#else  // !(__AVX2__ && __FMA__)

namespace imr::tensor::simd {
const Kernels* Avx2Kernels() { return nullptr; }
}  // namespace imr::tensor::simd

#endif
