// Scalar reference kernels: the exact loops ops.cc ran before the SIMD
// backend existed. These are the bit-identity baseline — training gates
// compare against them, so DO NOT "optimize" this file. Any change here
// changes training results.
#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/simd/dispatch.h"

namespace imr::tensor::simd {
namespace {

// Column tile for the packed dot kernel: one tile of B^T rows stays hot in
// L1/L2 while it is reused across a panel of output rows. (Tiling changes
// traversal order only, never a per-element accumulation sequence.)
constexpr int kPanelColTile = 64;

void AddScalarKernel(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void SubScalarKernel(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void MulScalarKernel(const float* a, const float* b, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleScalarKernel(const float* a, float s, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void TanhScalarKernel(const float* x, float* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = std::tanh(x[i]);
}

void AffineTanhFinishScalar(float* inout, const float* bias, int rows,
                            int cols) {
  for (int r = 0; r < rows; ++r) {
    float* __restrict orow = inout + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) orow[c] = std::tanh(orow[c] + bias[c]);
  }
}

// out[i, j] = sum_k a[i, k] * bt[j, k] for i in [row_lo, row_hi), all j.
// k ascends and zero a-operands are skipped, matching the original ikj
// kernel's per-element accumulation sequence exactly.
void MatMulPanelDotScalar(const float* av, const float* bt, float* out,
                          int64_t row_lo, int64_t row_hi, int inner,
                          int cols) {
  for (int j0 = 0; j0 < cols; j0 += kPanelColTile) {
    const int j_end = std::min(cols, j0 + kPanelColTile);
    for (int64_t i = row_lo; i < row_hi; ++i) {
      const float* arow = av + static_cast<size_t>(i) * inner;
      float* orow = out + static_cast<size_t>(i) * cols;
      for (int j = j0; j < j_end; ++j) {
        const float* btrow = bt + static_cast<size_t>(j) * inner;
        float acc = 0.0f;
        for (int k = 0; k < inner; ++k) {
          const float aval = arow[k];
          if (aval == 0.0f) continue;
          acc += aval * btrow[k];
        }
        orow[j] = acc;
      }
    }
  }
}

// ikj ordering: streams through b row-wise. out is pre-zeroed.
void MatMulIkjScalar(const float* av, const float* bv, float* out, int rows,
                     int inner, int cols) {
  for (int i = 0; i < rows; ++i) {
    const float* __restrict arow = av + static_cast<size_t>(i) * inner;
    float* __restrict orow = out + static_cast<size_t>(i) * cols;
    for (int k = 0; k < inner; ++k) {
      const float aval = arow[k];
      if (aval == 0.0f) continue;
      const float* __restrict brow = bv + static_cast<size_t>(k) * cols;
      for (int j = 0; j < cols; ++j) orow[j] += aval * brow[j];
    }
  }
}

void SoftmaxRowsScalar(const float* in, float* out, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* irow = in + static_cast<size_t>(r) * cols;
    float* orow = out + static_cast<size_t>(r) * cols;
    float max_v = -std::numeric_limits<float>::infinity();
    for (int c = 0; c < cols; ++c) max_v = std::max(max_v, irow[c]);
    float denom = 0.0f;
    for (int c = 0; c < cols; ++c) {
      orow[c] = std::exp(irow[c] - max_v);
      denom += orow[c];
    }
    const float inv = 1.0f / denom;
    for (int c = 0; c < cols; ++c) orow[c] *= inv;
  }
}

void LogSoftmaxRowsScalar(const float* in, float* out, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* irow = in + static_cast<size_t>(r) * cols;
    float* orow = out + static_cast<size_t>(r) * cols;
    float max_v = -std::numeric_limits<float>::infinity();
    for (int c = 0; c < cols; ++c) max_v = std::max(max_v, irow[c]);
    float denom = 0.0f;
    for (int c = 0; c < cols; ++c) denom += std::exp(irow[c] - max_v);
    const float log_denom = max_v + std::log(denom);
    for (int c = 0; c < cols; ++c) orow[c] = irow[c] - log_denom;
  }
}

void GemmS8S32Scalar(const int8_t* a, const int8_t* wt, int32_t* out,
                     int rows, int inner, int cols) {
  for (int i = 0; i < rows; ++i) {
    const int8_t* __restrict arow = a + static_cast<size_t>(i) * inner;
    int32_t* __restrict orow = out + static_cast<size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) {
      const int8_t* __restrict wrow = wt + static_cast<size_t>(j) * inner;
      int32_t acc = 0;
      for (int k = 0; k < inner; ++k) {
        acc += static_cast<int32_t>(arow[k]) * static_cast<int32_t>(wrow[k]);
      }
      orow[j] = acc;
    }
  }
}

// ANN sweep kernels. Ascending-k sequential float accumulation is the
// exactness contract FlatIndex tests compare against — keep it.
void AnnDotManyScalar(const float* query, const float* base, size_t rows,
                      size_t dim, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* __restrict row = base + r * dim;
    float acc = 0.0f;
    for (size_t k = 0; k < dim; ++k) acc += query[k] * row[k];
    out[r] = acc;
  }
}

void AnnL2SqrManyScalar(const float* query, const float* base, size_t rows,
                        size_t dim, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* __restrict row = base + r * dim;
    float acc = 0.0f;
    for (size_t k = 0; k < dim; ++k) {
      const float d = query[k] - row[k];
      acc += d * d;
    }
    out[r] = acc;
  }
}

void AnnCosineManyScalar(const float* query, const float* base,
                         const float* inv_norms, float query_inv_norm,
                         size_t rows, size_t dim, float* out) {
  for (size_t r = 0; r < rows; ++r) {
    const float* __restrict row = base + r * dim;
    float acc = 0.0f;
    for (size_t k = 0; k < dim; ++k) acc += query[k] * row[k];
    out[r] = acc * inv_norms[r] * query_inv_norm;
  }
}

void AnnDotBatchScalar(const float* queries, size_t num_queries,
                       const float* base, size_t rows, size_t dim,
                       float* out) {
  for (size_t q = 0; q < num_queries; ++q) {
    AnnDotManyScalar(queries + q * dim, base, rows, dim, out + q * rows);
  }
}

const Kernels kScalarTable = {
    Backend::kScalar,
    AddScalarKernel,
    SubScalarKernel,
    MulScalarKernel,
    ScaleScalarKernel,
    TanhScalarKernel,
    AffineTanhFinishScalar,
    MatMulPanelDotScalar,
    MatMulIkjScalar,
    SoftmaxRowsScalar,
    LogSoftmaxRowsScalar,
    GemmS8S32Scalar,
    AnnDotManyScalar,
    AnnL2SqrManyScalar,
    AnnCosineManyScalar,
    AnnDotBatchScalar,
};

}  // namespace

const Kernels* ScalarKernels() { return &kScalarTable; }

}  // namespace imr::tensor::simd
