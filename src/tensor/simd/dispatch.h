// Runtime-dispatched SIMD kernel backend.
//
// The tensor ops in ops.cc route their innermost loops through a
// `Kernels` table of function pointers. Which table is active is decided
// at runtime:
//
//   * Detection: at first use the best ISA the build AND the host CPU
//     support is picked (AVX2+FMA > SSE2 > scalar on x86, NEON on ARM).
//   * Override: `IMR_KERNEL_BACKEND={auto,scalar,sse2,avx2,neon}` in the
//     environment, the `--imr_kernel_backend` bench/example flag, or a
//     ScopedEvalBackend in tests pin the eval table explicitly.
//   * Dispatch rule: while autograd is recording (GradModeEnabled()),
//     Active() returns the SCALAR table unless vectorized training was
//     opted in (`--imr_vectorized_training` / IMR_VECTORIZED_TRAINING=1).
//     Under NoGradGuard — eval, serving, snapshot replay — Active()
//     returns the fastest (or pinned) table.
//
// Contract: the scalar table is the bit-identity reference — its kernels
// are the exact loops the ops had before this backend existed, so scalar
// training stays bit-identical to pre-SIMD results at any thread count.
// Vector tables may reassociate reductions and use polynomial
// transcendentals; their error bounds are documented in vec_math.h and
// enforced by tests/simd_test.cc. Elementwise add/sub/mul/scale have no
// reassociation freedom, so those are bit-identical in EVERY backend.
//
// Thread model: resolve Active()/EvalKernels() ONCE on the op-calling
// thread and pass the table (by reference) into any ParallelFor body.
// GradModeEnabled() is thread-local, so resolving on a worker would read
// the worker's grad mode, not the caller's.
#ifndef IMR_TENSOR_SIMD_DISPATCH_H_
#define IMR_TENSOR_SIMD_DISPATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace imr::tensor::simd {

enum class Backend : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

const char* BackendName(Backend backend);

// One entry per vectorizable inner loop. Pointers are never null — ISA
// tables that do not vectorize an entry inherit the scalar reference.
struct Kernels {
  Backend backend = Backend::kScalar;

  // Elementwise over n contiguous floats (out may alias an input).
  void (*add)(const float* a, const float* b, float* out, size_t n) = nullptr;
  void (*sub)(const float* a, const float* b, float* out, size_t n) = nullptr;
  void (*mul)(const float* a, const float* b, float* out, size_t n) = nullptr;
  void (*scale)(const float* a, float s, float* out, size_t n) = nullptr;

  // out[i] = tanh(x[i]).
  void (*tanh)(const float* x, float* out, size_t n) = nullptr;
  // Fused affine epilogue: inout[r,c] = tanh(inout[r,c] + bias[c]).
  void (*affine_tanh_finish)(float* inout, const float* bias, int rows,
                             int cols) = nullptr;

  // out[i,j] = dot(a[i,:], bt[j,:]) for i in [row_lo,row_hi), all j; bt is
  // the packed B^T panel ([cols x inner], PR 1's blocked transpose layout).
  void (*matmul_panel_dot)(const float* a, const float* bt, float* out,
                           int64_t row_lo, int64_t row_hi, int inner,
                           int cols) = nullptr;
  // out += a @ b in ikj order; out is pre-zeroed [rows x cols].
  void (*matmul_ikj)(const float* a, const float* b, float* out, int rows,
                     int inner, int cols) = nullptr;

  // Row-wise softmax / log-softmax of in ([rows x cols]) into out.
  void (*softmax_rows)(const float* in, float* out, int rows, int cols) = nullptr;
  void (*log_softmax_rows)(const float* in, float* out, int rows, int cols) = nullptr;

  // Quantized GEMM: out[i,j] = sum_k a[i,k] * wt[j,k] in int32; a is
  // [rows x inner] row-major, wt is the packed transposed weight
  // [cols x inner]. Pure integer arithmetic — bit-identical across
  // backends by construction (inner must stay < 2^16 to avoid overflow;
  // model widths here are O(100)).
  void (*gemm_s8s32)(const int8_t* a, const int8_t* wt, int32_t* out,
                     int rows, int inner, int cols) = nullptr;

  // ANN distance sweeps (src/graph/ann/): score one query against `rows`
  // contiguous base rows ([rows x dim] row-major). Scalar accumulates
  // sequentially in ascending k — that ordering is the exactness
  // reference for FlatIndex tests; vector tiers may reassociate.
  // out[r] = dot(query, base[r,:]).
  void (*ann_dot_many)(const float* query, const float* base, size_t rows,
                       size_t dim, float* out) = nullptr;
  // out[r] = ||query - base[r,:]||^2.
  void (*ann_l2sqr_many)(const float* query, const float* base, size_t rows,
                         size_t dim, float* out) = nullptr;
  // out[r] = dot(query, base[r,:]) * inv_norms[r] * query_inv_norm, i.e.
  // cosine with the per-row inverse norms precomputed at index build.
  void (*ann_cosine_many)(const float* query, const float* base,
                          const float* inv_norms, float query_inv_norm,
                          size_t rows, size_t dim, float* out) = nullptr;
  // Query batch: out[q*rows + r] = dot(queries[q,:], base[r,:]).
  void (*ann_dot_batch)(const float* queries, size_t num_queries,
                        const float* base, size_t rows, size_t dim,
                        float* out) = nullptr;
};

/// Best ISA supported by this build AND the host CPU.
Backend DetectBestBackend();

/// True when `backend` was compiled in and the host CPU can execute it.
bool BackendSupported(Backend backend);

/// All supported backends, scalar first.
std::vector<Backend> SupportedBackends();

/// Table for an explicit backend. IMR_CHECKs BackendSupported(backend).
const Kernels& KernelsFor(Backend backend);

/// Table used under NoGradGuard (eval/serve): the pinned backend if one
/// was set, otherwise DetectBestBackend().
const Kernels& EvalKernels();

/// Table used while autograd records: scalar unless vectorized training
/// was opted in, in which case it equals EvalKernels().
const Kernels& TrainKernels();

/// The dispatch rule ops.cc uses: TrainKernels() when GradModeEnabled()
/// on the calling thread, EvalKernels() otherwise.
const Kernels& Active();

/// Backend EvalKernels() currently resolves to.
Backend ActiveEvalBackend();

/// True when the eval backend was pinned via env/flag/scope (a pinned
/// scalar backend is an explicit choice, not a silent fallback).
bool EvalBackendPinned();

/// Pins the eval backend by name: "auto"/"" clears the pin, otherwise one
/// of "scalar", "sse2", "avx2", "neon". InvalidArgument on unknown names,
/// FailedPrecondition when the host cannot run the requested backend.
[[nodiscard]] util::Status SetBackendByName(const std::string& name);

void SetVectorizedTraining(bool on);
bool VectorizedTraining();

/// RAII pin of the eval backend (tests, benchmark A/B loops).
class ScopedEvalBackend {
 public:
  explicit ScopedEvalBackend(Backend backend);
  ~ScopedEvalBackend();
  ScopedEvalBackend(const ScopedEvalBackend&) = delete;
  ScopedEvalBackend& operator=(const ScopedEvalBackend&) = delete;

 private:
  int previous_pin_;  // -1 = was unpinned
};

}  // namespace imr::tensor::simd

#endif  // IMR_TENSOR_SIMD_DISPATCH_H_
