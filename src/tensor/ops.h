// Differentiable operations on Tensor. Every op returns a fresh node whose
// backward closure accumulates into the parents' gradients. Shapes are
// validated with IMR_CHECK; passing mismatched shapes is a programming error.
//
// Conventions: rank-2 tensors are row-major [rows x cols]; a "row vector"
// argument may be rank-1 [C]. Sentence encoders treat rows as time steps.
#ifndef IMR_TENSOR_OPS_H_
#define IMR_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace imr::tensor {

// ---- elementwise ----

/// c = a + b (same shape).
Tensor Add(const Tensor& a, const Tensor& b);
/// c = a - b (same shape).
Tensor Sub(const Tensor& a, const Tensor& b);
/// c = a * b elementwise (same shape).
Tensor Mul(const Tensor& a, const Tensor& b);
/// c = a * s.
Tensor Scale(const Tensor& a, float s);
/// c = a * s where s is a trainable scalar tensor (size 1). Gradients flow
/// into both a and s.
Tensor ScaleByScalarTensor(const Tensor& a, const Tensor& s);
/// c = a + s.
Tensor AddScalar(const Tensor& a, float s);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);

/// Inverted dropout: zeroes with probability p and scales kept values by
/// 1/(1-p). Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, util::Rng* rng, bool training);

// ---- linear algebra ----

/// [R x K] x [K x C] -> [R x C]. A rank-1 lhs is treated as [1 x K] and the
/// result is rank-1 [C].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Adds a row vector v [C] (or [1 x C]) to every row of m [R x C].
Tensor AddRowVector(const Tensor& m, const Tensor& v);

/// Fused Tanh(x @ weight + bias): one kernel, one output node, no
/// intermediate MatMul/Add tensors. Drives the same MatMul kernels as the
/// unfused composition, so forward and backward are bit-identical to
/// Tanh(AddRowVector(MatMul(x, weight), bias)) (or the Add form for rank-1
/// x) at any thread count. x: [R x K] or rank-1 [K]; weight: [K x C];
/// bias: [C].
Tensor AffineTanh(const Tensor& x, const Tensor& weight, const Tensor& bias);

/// Dot product of each row of x [N x C] with q [C] -> [N].
Tensor RowwiseDot(const Tensor& x, const Tensor& q);

/// Sum_n w[n] * x[n, :] -> [C]. w is rank-1 [N].
Tensor WeightedSumRows(const Tensor& x, const Tensor& w);

// ---- shape ----

/// Same data, new shape (sizes must match).
Tensor Reshape(const Tensor& a, std::vector<int> shape);

/// Stacks parts vertically; each part is [r_i x C] or rank-1 [C] (one row).
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Concatenates rank-1 vectors into one rank-1 vector.
Tensor ConcatVec(const std::vector<Tensor>& parts);

/// Concatenates rank-2 tensors horizontally; all parts share the row count.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Extracts row r of a rank-2 tensor as a rank-1 vector.
Tensor Row(const Tensor& x, int r);

/// Extracts v[start, start+len) of a rank-1 vector.
Tensor Slice(const Tensor& v, int start, int len);

/// Embedding lookup: rows of `table` [V x D] at `indices` -> [N x D].
/// Gradients scatter-add into the table.
Tensor GatherRows(const Tensor& table, const std::vector<int>& indices);

// ---- reductions ----

Tensor Sum(const Tensor& a);          // -> scalar
Tensor Mean(const Tensor& a);         // -> scalar
Tensor SumRows(const Tensor& x);      // [T x C] -> [C]
Tensor MeanRows(const Tensor& x);     // [T x C] -> [C]
/// Per-column max over rows: [T x C] -> [C].
Tensor MaxOverRows(const Tensor& x);

/// Piecewise max pooling (Zeng et al. 2015): rows are split into three
/// segments [0, b1), [b1, b2), [b2, T) and max-pooled per column, giving
/// [3*C]. Empty segments contribute zeros. Requires 0 <= b1 <= b2 <= T.
Tensor PiecewiseMaxOverRows(const Tensor& x, int b1, int b2);

// ---- softmax & losses ----

/// Row-wise softmax ([N x C] or rank-1).
Tensor Softmax(const Tensor& x);
/// Row-wise log-softmax.
Tensor LogSoftmax(const Tensor& x);
/// Mean negative log-likelihood of `labels` under row-wise softmax(logits).
/// logits: [N x C] (or rank-1 with one label). Returns a scalar.
Tensor CrossEntropyLoss(const Tensor& logits, const std::vector<int>& labels);

// ---- convolution ----

/// 1-D convolution over time with "same" zero padding.
///   x: [T x D], weight: [F x (window*D)], bias: [F] -> [T x F].
/// Window must be odd. Filter f at time t sees rows t-w/2 .. t+w/2.
Tensor Conv1dSame(const Tensor& x, const Tensor& weight, const Tensor& bias,
                  int window);

}  // namespace imr::tensor

#endif  // IMR_TENSOR_OPS_H_
