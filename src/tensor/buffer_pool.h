// Size-bucketed, thread-aware buffer pool for the tensor hot path.
//
// Every op in ops.cc used to heap-allocate a fresh std::vector<float> for its
// output (plus a TensorImpl node), so steady-state training and serving were
// dominated by allocator traffic. The pool recycles both kinds of storage:
//
//   * float buffers (tensor values, gradients, kernel scratch) live in
//     power-of-two size-class buckets. Acquire(n) pops from bucket
//     ceil_log2(n); a released buffer returns to bucket floor_log2(capacity).
//     Fresh allocations reserve the full 2^ceil_log2(n) so a buffer always
//     comes back to the bucket it can serve.
//   * TensorImpl nodes (and their shared_ptr control blocks) are recycled as
//     raw byte blocks keyed by exact size, via PoolAllocator +
//     std::allocate_shared.
//
// Thread model: each thread owns a private pool (thread_local), so Acquire /
// Release never contend. Buffers may migrate between threads — a buffer
// acquired on thread A and released on thread B simply joins B's pool; all
// storage is plain operator new/delete so provenance never matters. Counters
// are relaxed atomics so PoolStats() may aggregate them from any thread
// (including concurrently with pool traffic); a pool retiring at thread exit
// folds its counters into a global accumulator first.
//
// Determinism contract: the pool changes WHERE bytes come from, never what is
// computed. Acquired buffers have unspecified contents (kernels either fully
// overwrite them or use AcquireBufferFill); every kernel writes the same
// float values in the same order whether its storage is pooled, fresh, or
// pool-disabled, so pooled and unpooled runs are bit-identical.
#ifndef IMR_TENSOR_BUFFER_POOL_H_
#define IMR_TENSOR_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace imr::tensor {

/// Aggregated pool counters across all threads (live pools plus pools
/// already retired at thread exit).
struct PoolStatsSnapshot {
  uint64_t buffer_hits = 0;    // float-buffer acquires served from a bucket
  uint64_t buffer_misses = 0;  // float-buffer acquires that hit the heap
  uint64_t node_hits = 0;      // TensorImpl node blocks served from the pool
  uint64_t node_misses = 0;    // node blocks that hit the heap
  uint64_t pooled_buffers = 0; // buffers currently cached, all live pools
  uint64_t pooled_bytes = 0;   // bytes currently cached (buffers + nodes)

  uint64_t total_hits() const { return buffer_hits + node_hits; }
  uint64_t total_misses() const { return buffer_misses + node_misses; }
};

/// Snapshot of the pool counters. Safe to call from any thread at any time;
/// counters are relaxed atomics, so a snapshot taken while other threads are
/// mid-step is approximate (each individual counter is still exact).
PoolStatsSnapshot PoolStats();

/// Zeroes the hit/miss counters of every live pool and the retired-pool
/// accumulator. The pooled_buffers/pooled_bytes gauges are left alone (they
/// describe live cached storage, not traffic). Call from a quiescent point —
/// typically between steps in a test or benchmark.
void ResetPoolStats();

/// True when acquisitions on this thread go through the pool. Defaults on.
bool PoolEnabled();

/// RAII guard that bypasses the pool on the current thread: acquisitions
/// fall back to plain heap allocation and nothing is counted or cached.
/// Used to measure the unpooled baseline and to prove bit-identity.
class PoolDisabledGuard {
 public:
  PoolDisabledGuard();
  ~PoolDisabledGuard();
  PoolDisabledGuard(const PoolDisabledGuard&) = delete;
  PoolDisabledGuard& operator=(const PoolDisabledGuard&) = delete;

 private:
  bool previous_;
};

namespace internal {

/// Returns a buffer with size() == n and unspecified contents. The caller
/// must fully overwrite it (or use AcquireBufferFill). Falls back to a plain
/// zero-initialised vector when the pool is disabled or unavailable.
std::vector<float> AcquireBuffer(size_t n);

/// Returns a buffer with size() == n, every element == fill.
std::vector<float> AcquireBufferFill(size_t n, float fill);

/// Returns a buffer's storage to the current thread's pool (or frees it when
/// the pool is disabled, full, or already destroyed). Accepting by value
/// keeps call sites simple: ReleaseBuffer(std::move(v)).
void ReleaseBuffer(std::vector<float>&& buffer);

/// Raw byte-block recycling for TensorImpl nodes (exact-size freelists).
void* AcquireBytes(size_t bytes);
void ReleaseBytes(void* ptr, size_t bytes);

/// Frees every cached buffer and node block owned by the current thread's
/// pool. Gauges drop accordingly; hit/miss counters are preserved.
void TrimThreadPool();

/// Stateless STL allocator over the byte pool; std::allocate_shared with
/// this allocator recycles TensorImpl nodes together with their control
/// blocks.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(AcquireBytes(n * sizeof(T)));
  }
  void deallocate(T* ptr, size_t n) { ReleaseBytes(ptr, n * sizeof(T)); }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
  friend bool operator!=(const PoolAllocator&, const PoolAllocator&) {
    return false;
  }
};

/// Copyable owner of a pooled scratch buffer. Backward closures capture
/// their saved activations (dropout masks, softmax probabilities, packed
/// panels) in one of these so the storage returns to the pool when the
/// graph node is destroyed. Copyable because std::function requires
/// copy-constructible targets; the copy duplicates the buffer (it only runs
/// if a backward closure itself is copied, which the graph never does).
class PooledFloats {
 public:
  PooledFloats() = default;
  explicit PooledFloats(std::vector<float> buffer)
      : buffer_(std::move(buffer)) {}

  PooledFloats(const PooledFloats& other)
      : buffer_(other.buffer_) {}
  PooledFloats(PooledFloats&& other) noexcept
      : buffer_(std::move(other.buffer_)) {}
  PooledFloats& operator=(const PooledFloats& other) {
    if (this != &other) buffer_ = other.buffer_;
    return *this;
  }
  PooledFloats& operator=(PooledFloats&& other) noexcept {
    buffer_ = std::move(other.buffer_);
    return *this;
  }
  ~PooledFloats() { ReleaseBuffer(std::move(buffer_)); }

  const std::vector<float>& vec() const { return buffer_; }
  std::vector<float>& vec() { return buffer_; }
  const float* data() const { return buffer_.data(); }
  float* data() { return buffer_.data(); }
  size_t size() const { return buffer_.size(); }
  float operator[](size_t i) const { return buffer_[i]; }
  float& operator[](size_t i) { return buffer_[i]; }

 private:
  std::vector<float> buffer_;
};

}  // namespace internal

}  // namespace imr::tensor

#endif  // IMR_TENSOR_BUFFER_POOL_H_
