#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <unordered_set>

#include "tensor/buffer_pool.h"
#include "util/logging.h"

namespace imr::tensor {

namespace {
thread_local bool g_grad_mode = true;

std::atomic<uint64_t> g_sparse_rows_touched{0};
std::atomic<uint64_t> g_sparse_rows_total{0};
std::atomic<uint64_t> g_sparse_dense_fallbacks{0};

// Inserts `rows` (unsorted, duplicates allowed) into the sorted-unique
// `set`. When `buffer` is non-null, a newly inserted row r has its
// [r*cols, (r+1)*cols) span zeroed — used by sink entries whose storage is
// handed over dirty. O(k log t) searches plus O(t) per actual insert; both
// t and k are batch-touch-rate sized, never vocab sized.
void RecordRows(std::vector<int>* set, const std::vector<int>& rows,
                float* buffer, int cols) {
  for (int row : rows) {
    auto it = std::lower_bound(set->begin(), set->end(), row);
    if (it != set->end() && *it == row) continue;
    if (buffer != nullptr) {
      std::fill_n(buffer + static_cast<size_t>(row) * cols, cols, 0.0f);
    }
    set->insert(it, row);
  }
}

// Flips a row-sparse-capable leaf's gradient to dense for the current step
// (a non-row-tracked op wrote into it). Counted once per transition.
void MarkGradDense(internal::TensorImpl* impl) {
  if (impl->row_sparse && !impl->grad_dense) {
    impl->grad_dense = true;
    internal::NoteDenseFallback();
  }
}

size_t ShapeSize(const std::vector<int>& shape) {
  size_t n = 1;
  for (int d : shape) {
    IMR_CHECK_GE(d, 0);
    n *= static_cast<size_t>(d);
  }
  return n;
}

// Nodes come from the byte pool (block + control block in one recycled
// allocation) so steady-state graph construction never hits the heap.
std::shared_ptr<internal::TensorImpl> NewImpl() {
  return std::allocate_shared<internal::TensorImpl>(
      internal::PoolAllocator<internal::TensorImpl>());
}
}  // namespace

bool GradModeEnabled() { return g_grad_mode; }

SparseGradStatsSnapshot SparseGradStats() {
  SparseGradStatsSnapshot out;
  out.rows_touched = g_sparse_rows_touched.load(std::memory_order_relaxed);
  out.rows_total = g_sparse_rows_total.load(std::memory_order_relaxed);
  out.dense_fallbacks =
      g_sparse_dense_fallbacks.load(std::memory_order_relaxed);
  return out;
}

void ResetSparseGradStats() {
  g_sparse_rows_touched.store(0, std::memory_order_relaxed);
  g_sparse_rows_total.store(0, std::memory_order_relaxed);
  g_sparse_dense_fallbacks.store(0, std::memory_order_relaxed);
}

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int> shape, float fill, bool requires_grad) {
  auto impl = NewImpl();
  impl->value = internal::AcquireBufferFill(ShapeSize(shape), fill);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(std::vector<int> shape, std::vector<float> data,
                        bool requires_grad) {
  IMR_CHECK_EQ(ShapeSize(shape), data.size());
  auto impl = NewImpl();
  impl->shape = std::move(shape);
  impl->value = std::move(data);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

const std::vector<int>& Tensor::shape() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->shape;
}

int Tensor::rank() const { return static_cast<int>(shape().size()); }

size_t Tensor::size() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->value.size();
}

int Tensor::rows() const {
  const auto& s = shape();
  if (s.size() == 1) return 1;
  IMR_CHECK_EQ(s.size(), 2u);
  return s[0];
}

int Tensor::cols() const {
  const auto& s = shape();
  if (s.size() == 1) return s[0];
  IMR_CHECK_EQ(s.size(), 2u);
  return s[1];
}

bool Tensor::requires_grad() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool requires_grad) {
  IMR_CHECK(impl_ != nullptr);
  impl_->requires_grad = requires_grad;
}

const std::vector<float>& Tensor::data() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->value;
}

std::vector<float>& Tensor::mutable_data() {
  IMR_CHECK(impl_ != nullptr);
  return impl_->value;
}

const std::vector<float>& Tensor::grad() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->grad;
}

std::vector<float>& Tensor::mutable_grad() {
  IMR_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  MarkGradDense(impl_.get());
  return impl_->grad;
}

void Tensor::set_row_sparse_grad(bool row_sparse) {
  IMR_CHECK(impl_ != nullptr);
  if (row_sparse) IMR_CHECK_EQ(rank(), 2);
  impl_->row_sparse = row_sparse;
}

bool Tensor::row_sparse_grad() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->row_sparse;
}

bool Tensor::grad_is_row_sparse() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->row_sparse && !impl_->grad_dense;
}

const std::vector<int>& Tensor::grad_touched_rows() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->touched_rows;
}

void Tensor::set_row_materializer(
    std::function<void(const std::vector<int>&)> fn) {
  IMR_CHECK(impl_ != nullptr);
  impl_->row_materializer = std::move(fn);
}

float Tensor::item() const {
  IMR_CHECK_EQ(size(), 1u);
  return data()[0];
}

float Tensor::at(int i) const {
  IMR_CHECK_EQ(rank(), 1);
  IMR_CHECK_GE(i, 0);
  IMR_CHECK_LT(i, shape()[0]);
  return data()[static_cast<size_t>(i)];
}

float Tensor::at(int r, int c) const {
  IMR_CHECK_EQ(rank(), 2);
  IMR_CHECK_GE(r, 0);
  IMR_CHECK_LT(r, shape()[0]);
  IMR_CHECK_GE(c, 0);
  IMR_CHECK_LT(c, shape()[1]);
  return data()[static_cast<size_t>(r) * shape()[1] + c];
}

void Tensor::ZeroGrad() {
  IMR_CHECK(impl_ != nullptr);
  if (!impl_->grad.empty()) {
    if (impl_->row_sparse && !impl_->grad_dense) {
      // Rows outside touched_rows are already zero (the buffer was fully
      // zeroed when allocated and sparse clears maintain that), so only
      // the touched rows need wiping: O(touched x dim), not O(vocab x dim).
      const int cols = impl_->shape[1];
      float* g = impl_->grad.data();
      for (int row : impl_->touched_rows) {
        std::fill_n(g + static_cast<size_t>(row) * cols, cols, 0.0f);
      }
    } else {
      std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
    }
  }
  impl_->grad_dense = false;
  impl_->touched_rows.clear();
}

void Tensor::Backward() {
  IMR_CHECK(impl_ != nullptr);
  IMR_CHECK_EQ(size(), 1u);
  // Seed.
  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;

  // Iterative post-order DFS to get a topological order.
  std::vector<internal::TensorImpl*> order;
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::TensorImpl* parent =
          frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  // `order` is post-order: parents before children; walk in reverse so each
  // node's grad is complete before its backward_fn fires.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

std::string Tensor::DebugString() const {
  if (!defined()) return "Tensor(null)";
  std::ostringstream os;
  os << "Tensor([";
  for (size_t i = 0; i < shape().size(); ++i) {
    if (i > 0) os << ", ";
    os << shape()[i];
  }
  os << "], [";
  const size_t preview = std::min<size_t>(size(), 8);
  for (size_t i = 0; i < preview; ++i) {
    if (i > 0) os << ", ";
    os << data()[i];
  }
  if (size() > preview) os << ", ...";
  os << "])";
  return os.str();
}

namespace internal {

TensorImpl::~TensorImpl() {
  ReleaseBuffer(std::move(value));
  ReleaseBuffer(std::move(grad));
}

void TensorImpl::EnsureGrad() {
  const size_t n = value.size();
  if (grad.size() == n) return;
  if (grad.capacity() >= n) {
    grad.resize(n);
    std::fill(grad.begin(), grad.end(), 0.0f);
  } else {
    ReleaseBuffer(std::move(grad));
    grad = AcquireBufferFill(n, 0.0f);
  }
}

namespace {
thread_local ScopedGradSink* g_active_sink = nullptr;
}  // namespace

ScopedGradSink::ScopedGradSink() : previous_(g_active_sink) {
  g_active_sink = this;
}

ScopedGradSink::~ScopedGradSink() {
  Deactivate();
  // Buffers return to the destroying thread's pool (typically the merging
  // thread), keeping the steady-state parallel step allocation-free.
  for (Entry& entry : entries_) ReleaseBuffer(std::move(entry.grad));
}

void ScopedGradSink::Deactivate() {
  if (active_) {
    if (g_active_sink == this) g_active_sink = previous_;
    active_ = false;
  }
}

ScopedGradSink::Entry& ScopedGradSink::EntryFor(
    const std::shared_ptr<TensorImpl>& impl, bool row_sparse) {
  auto it = index_.find(impl.get());
  if (it == index_.end()) {
    it = index_.emplace(impl.get(), entries_.size()).first;
    Entry entry;
    entry.impl = impl;
    if (row_sparse) {
      // The buffer stays dirty; each row is zeroed on first touch
      // (RecordRows), keeping entry setup O(touched rows).
      entry.row_sparse = true;
      entry.grad = AcquireBuffer(impl->value.size());
    } else {
      entry.grad = AcquireBufferFill(impl->value.size(), 0.0f);
      if (impl->row_sparse) NoteDenseFallback();
    }
    entries_.push_back(std::move(entry));
  }
  return entries_[it->second];
}

std::vector<float>* ScopedGradSink::BufferFor(
    const std::shared_ptr<TensorImpl>& impl) {
  Entry& entry = EntryFor(impl, /*row_sparse=*/false);
  if (entry.row_sparse) {
    // A dense op joined a row-sparse entry: zero the rows no closure has
    // touched yet (they are still pool garbage), then treat it as dense.
    const int cols = impl->shape[1];
    const int rows = impl->shape[0];
    float* g = entry.grad.data();
    auto touched = entry.touched_rows.begin();
    for (int row = 0; row < rows; ++row) {
      if (touched != entry.touched_rows.end() && *touched == row) {
        ++touched;
        continue;
      }
      std::fill_n(g + static_cast<size_t>(row) * cols, cols, 0.0f);
    }
    entry.row_sparse = false;
    NoteDenseFallback();
  }
  return &entry.grad;
}

std::vector<float>* ScopedGradSink::BufferForRows(
    const std::shared_ptr<TensorImpl>& impl, const std::vector<int>& rows) {
  Entry& entry = EntryFor(impl, /*row_sparse=*/true);
  if (entry.row_sparse) {
    RecordRows(&entry.touched_rows, rows, entry.grad.data(), impl->shape[1]);
  }
  return &entry.grad;
}

void ScopedGradSink::MergeIntoShared() {
  for (Entry& entry : entries_) {
    entry.impl->EnsureGrad();
    float* dst = entry.impl->grad.data();
    const float* src = entry.grad.data();
    if (entry.row_sparse) {
      // Touched rows merge in ascending order. Each element still receives
      // its per-sink contributions in the same ascending-chunk order as a
      // dense merge — the skipped rows would only have added +0.0f — so
      // the merged floats are bit-identical at any thread count.
      const int cols = entry.impl->shape[1];
      for (int row : entry.touched_rows) {
        const size_t off = static_cast<size_t>(row) * cols;
        for (int c = 0; c < cols; ++c) dst[off + c] += src[off + c];
      }
      if (!entry.impl->grad_dense) {
        RecordRows(&entry.impl->touched_rows, entry.touched_rows,
                   /*buffer=*/nullptr, /*cols=*/0);
      }
    } else {
      const size_t n = entry.grad.size();
      for (size_t i = 0; i < n; ++i) dst[i] += src[i];
      MarkGradDense(entry.impl.get());
    }
  }
}

std::vector<float>* GradTarget(const std::shared_ptr<TensorImpl>& impl) {
  // Leaves (parameters) are shared across data-parallel replicas and must be
  // redirected; intermediate nodes (backward_fn set) are replica-private.
  if (g_active_sink != nullptr && !impl->backward_fn) {
    return g_active_sink->BufferFor(impl);
  }
  impl->EnsureGrad();
  MarkGradDense(impl.get());
  return &impl->grad;
}

std::vector<float>* GradTargetRows(const std::shared_ptr<TensorImpl>& impl,
                                   const std::vector<int>& rows) {
  if (!impl->row_sparse) return GradTarget(impl);
  if (g_active_sink != nullptr && !impl->backward_fn) {
    return g_active_sink->BufferForRows(impl, rows);
  }
  impl->EnsureGrad();
  if (!impl->grad_dense) {
    // The shared grad buffer is maintained all-zero outside touched rows,
    // so recording needs no zeroing here.
    RecordRows(&impl->touched_rows, rows, /*buffer=*/nullptr, /*cols=*/0);
  }
  return &impl->grad;
}

void NoteSparseRowsConsumed(uint64_t rows_touched, uint64_t rows_total) {
  g_sparse_rows_touched.fetch_add(rows_touched, std::memory_order_relaxed);
  g_sparse_rows_total.fetch_add(rows_total, std::memory_order_relaxed);
}

void NoteDenseFallback() {
  g_sparse_dense_fallbacks.fetch_add(1, std::memory_order_relaxed);
}

Tensor MakeResult(std::vector<int> shape, std::vector<float> value,
                  std::vector<Tensor> parents,
                  std::function<void(TensorImpl&)> backward) {
  auto impl = NewImpl();
  impl->shape = std::move(shape);
  impl->value = std::move(value);
  bool any_grad = false;
  for (const Tensor& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any_grad = true;
      break;
    }
  }
  if (any_grad && GradModeEnabled()) {
    impl->requires_grad = true;
    impl->backward_fn = std::move(backward);
    impl->parents.reserve(parents.size());
    for (const Tensor& p : parents) impl->parents.push_back(p.impl());
  }
  return Tensor(std::move(impl));
}

}  // namespace internal

}  // namespace imr::tensor
