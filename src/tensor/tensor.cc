#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "tensor/buffer_pool.h"
#include "util/logging.h"

namespace imr::tensor {

namespace {
thread_local bool g_grad_mode = true;

size_t ShapeSize(const std::vector<int>& shape) {
  size_t n = 1;
  for (int d : shape) {
    IMR_CHECK_GE(d, 0);
    n *= static_cast<size_t>(d);
  }
  return n;
}

// Nodes come from the byte pool (block + control block in one recycled
// allocation) so steady-state graph construction never hits the heap.
std::shared_ptr<internal::TensorImpl> NewImpl() {
  return std::allocate_shared<internal::TensorImpl>(
      internal::PoolAllocator<internal::TensorImpl>());
}
}  // namespace

bool GradModeEnabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

Tensor Tensor::Zeros(std::vector<int> shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int> shape, float fill, bool requires_grad) {
  auto impl = NewImpl();
  impl->value = internal::AcquireBufferFill(ShapeSize(shape), fill);
  impl->shape = std::move(shape);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromData(std::vector<int> shape, std::vector<float> data,
                        bool requires_grad) {
  IMR_CHECK_EQ(ShapeSize(shape), data.size());
  auto impl = NewImpl();
  impl->shape = std::move(shape);
  impl->value = std::move(data);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

const std::vector<int>& Tensor::shape() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->shape;
}

int Tensor::rank() const { return static_cast<int>(shape().size()); }

size_t Tensor::size() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->value.size();
}

int Tensor::rows() const {
  const auto& s = shape();
  if (s.size() == 1) return 1;
  IMR_CHECK_EQ(s.size(), 2u);
  return s[0];
}

int Tensor::cols() const {
  const auto& s = shape();
  if (s.size() == 1) return s[0];
  IMR_CHECK_EQ(s.size(), 2u);
  return s[1];
}

bool Tensor::requires_grad() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->requires_grad;
}

void Tensor::set_requires_grad(bool requires_grad) {
  IMR_CHECK(impl_ != nullptr);
  impl_->requires_grad = requires_grad;
}

const std::vector<float>& Tensor::data() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->value;
}

std::vector<float>& Tensor::mutable_data() {
  IMR_CHECK(impl_ != nullptr);
  return impl_->value;
}

const std::vector<float>& Tensor::grad() const {
  IMR_CHECK(impl_ != nullptr);
  return impl_->grad;
}

std::vector<float>& Tensor::mutable_grad() {
  IMR_CHECK(impl_ != nullptr);
  impl_->EnsureGrad();
  return impl_->grad;
}

float Tensor::item() const {
  IMR_CHECK_EQ(size(), 1u);
  return data()[0];
}

float Tensor::at(int i) const {
  IMR_CHECK_EQ(rank(), 1);
  IMR_CHECK_GE(i, 0);
  IMR_CHECK_LT(i, shape()[0]);
  return data()[static_cast<size_t>(i)];
}

float Tensor::at(int r, int c) const {
  IMR_CHECK_EQ(rank(), 2);
  IMR_CHECK_GE(r, 0);
  IMR_CHECK_LT(r, shape()[0]);
  IMR_CHECK_GE(c, 0);
  IMR_CHECK_LT(c, shape()[1]);
  return data()[static_cast<size_t>(r) * shape()[1] + c];
}

void Tensor::ZeroGrad() {
  IMR_CHECK(impl_ != nullptr);
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

void Tensor::Backward() {
  IMR_CHECK(impl_ != nullptr);
  IMR_CHECK_EQ(size(), 1u);
  // Seed.
  impl_->EnsureGrad();
  impl_->grad[0] = 1.0f;

  // Iterative post-order DFS to get a topological order.
  std::vector<internal::TensorImpl*> order;
  std::unordered_set<internal::TensorImpl*> visited;
  struct Frame {
    internal::TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::TensorImpl* parent =
          frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  // `order` is post-order: parents before children; walk in reverse so each
  // node's grad is complete before its backward_fn fires.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::TensorImpl* node = *it;
    if (node->backward_fn) {
      node->EnsureGrad();
      node->backward_fn(*node);
    }
  }
}

std::string Tensor::DebugString() const {
  if (!defined()) return "Tensor(null)";
  std::ostringstream os;
  os << "Tensor([";
  for (size_t i = 0; i < shape().size(); ++i) {
    if (i > 0) os << ", ";
    os << shape()[i];
  }
  os << "], [";
  const size_t preview = std::min<size_t>(size(), 8);
  for (size_t i = 0; i < preview; ++i) {
    if (i > 0) os << ", ";
    os << data()[i];
  }
  if (size() > preview) os << ", ...";
  os << "])";
  return os.str();
}

namespace internal {

TensorImpl::~TensorImpl() {
  ReleaseBuffer(std::move(value));
  ReleaseBuffer(std::move(grad));
}

void TensorImpl::EnsureGrad() {
  const size_t n = value.size();
  if (grad.size() == n) return;
  if (grad.capacity() >= n) {
    grad.resize(n);
    std::fill(grad.begin(), grad.end(), 0.0f);
  } else {
    ReleaseBuffer(std::move(grad));
    grad = AcquireBufferFill(n, 0.0f);
  }
}

namespace {
thread_local ScopedGradSink* g_active_sink = nullptr;
}  // namespace

ScopedGradSink::ScopedGradSink() : previous_(g_active_sink) {
  g_active_sink = this;
}

ScopedGradSink::~ScopedGradSink() {
  Deactivate();
  // Buffers return to the destroying thread's pool (typically the merging
  // thread), keeping the steady-state parallel step allocation-free.
  for (Entry& entry : entries_) ReleaseBuffer(std::move(entry.grad));
}

void ScopedGradSink::Deactivate() {
  if (active_) {
    if (g_active_sink == this) g_active_sink = previous_;
    active_ = false;
  }
}

std::vector<float>* ScopedGradSink::BufferFor(
    const std::shared_ptr<TensorImpl>& impl) {
  auto it = index_.find(impl.get());
  if (it == index_.end()) {
    it = index_.emplace(impl.get(), entries_.size()).first;
    entries_.push_back({impl, AcquireBufferFill(impl->value.size(), 0.0f)});
  }
  return &entries_[it->second].grad;
}

void ScopedGradSink::MergeIntoShared() {
  for (Entry& entry : entries_) {
    entry.impl->EnsureGrad();
    float* dst = entry.impl->grad.data();
    const float* src = entry.grad.data();
    const size_t n = entry.grad.size();
    for (size_t i = 0; i < n; ++i) dst[i] += src[i];
  }
}

std::vector<float>* GradTarget(const std::shared_ptr<TensorImpl>& impl) {
  // Leaves (parameters) are shared across data-parallel replicas and must be
  // redirected; intermediate nodes (backward_fn set) are replica-private.
  if (g_active_sink != nullptr && !impl->backward_fn) {
    return g_active_sink->BufferFor(impl);
  }
  impl->EnsureGrad();
  return &impl->grad;
}

Tensor MakeResult(std::vector<int> shape, std::vector<float> value,
                  std::vector<Tensor> parents,
                  std::function<void(TensorImpl&)> backward) {
  auto impl = NewImpl();
  impl->shape = std::move(shape);
  impl->value = std::move(value);
  bool any_grad = false;
  for (const Tensor& p : parents) {
    if (p.defined() && p.requires_grad()) {
      any_grad = true;
      break;
    }
  }
  if (any_grad && GradModeEnabled()) {
    impl->requires_grad = true;
    impl->backward_fn = std::move(backward);
    impl->parents.reserve(parents.size());
    for (const Tensor& p : parents) impl->parents.push_back(p.impl());
  }
  return Tensor(std::move(impl));
}

}  // namespace internal

}  // namespace imr::tensor
