// A small dense float tensor with reverse-mode automatic differentiation.
//
// Design: Tensor is a cheap value-semantic handle onto a shared node
// (TensorImpl). Each op produces a fresh node that records its parents and a
// backward closure; Tensor::Backward() runs the closures in reverse
// topological order. Only rank-1 and rank-2 tensors are used by IMR models,
// which keeps every op simple, cache-friendly and easy to verify with
// numerical gradient checks (see nn/gradcheck.h).
#ifndef IMR_TENSOR_TENSOR_H_
#define IMR_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace imr::tensor {

class Tensor;

namespace internal {

struct TensorImpl {
  std::vector<int> shape;
  std::vector<float> value;
  std::vector<float> grad;  // allocated lazily, same length as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  // Reads this->grad, accumulates into parents' grads. Null for leaves.
  std::function<void(TensorImpl&)> backward_fn;

  TensorImpl() = default;
  // Returns value/grad storage to the destroying thread's buffer pool.
  ~TensorImpl();

  size_t size() const { return value.size(); }
  // Makes grad a zeroed buffer the length of value, reusing existing
  // capacity when possible (no-op when the length already matches).
  void EnsureGrad();
};

}  // namespace internal

/// Returns true when ops should record the autograd graph. Defaults to true.
bool GradModeEnabled();

/// RAII guard that disables graph recording (used during evaluation).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Dense float tensor handle. Copying shares the underlying node.
class Tensor {
 public:
  /// Empty (null) tensor; most APIs require a non-null tensor.
  Tensor() = default;

  /// Fresh leaf tensors.
  static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int> shape, float fill,
                     bool requires_grad = false);
  static Tensor FromData(std::vector<int> shape, std::vector<float> data,
                         bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  const std::vector<int>& shape() const;
  int rank() const;
  /// Total number of elements.
  size_t size() const;
  /// Rows/cols of a rank-2 tensor; a rank-1 tensor is treated as one row.
  int rows() const;
  int cols() const;

  bool requires_grad() const;
  void set_requires_grad(bool requires_grad);

  const std::vector<float>& data() const;
  std::vector<float>& mutable_data();
  /// Gradient buffer; empty until backward touched this node.
  const std::vector<float>& grad() const;
  std::vector<float>& mutable_grad();

  float item() const;           // requires size()==1
  float at(int i) const;        // rank-1 access
  float at(int r, int c) const; // rank-2 access

  void ZeroGrad();

  /// Runs reverse-mode autodiff from this scalar node.
  void Backward();

  std::string DebugString() const;

  // --- internal plumbing for ops ---
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}
  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

namespace internal {

/// Creates a result node wired to its parents; `backward` may be null when
/// grad mode is off or no parent requires grad.
Tensor MakeResult(std::vector<int> shape, std::vector<float> value,
                  std::vector<Tensor> parents,
                  std::function<void(TensorImpl&)> backward);

/// Thread-local redirection of leaf-gradient accumulation, enabling
/// data-parallel backward passes over shared parameters.
///
/// While a sink is active on a thread, backward closures running on that
/// thread accumulate gradients of LEAF nodes (parameters: requires_grad set,
/// no backward_fn) into a private per-sink buffer instead of the shared
/// TensorImpl::grad. Intermediate nodes are created per-thread during a
/// data-parallel forward pass, so their member grad is already private and
/// stays in use. After the parallel region the caller merges sinks into the
/// shared grads sequentially (in a fixed order, keeping float accumulation
/// deterministic for a fixed chunk count).
class ScopedGradSink {
 public:
  /// Installs the sink on the constructing thread.
  ScopedGradSink();
  ~ScopedGradSink();
  ScopedGradSink(const ScopedGradSink&) = delete;
  ScopedGradSink& operator=(const ScopedGradSink&) = delete;

  /// Uninstalls the sink (idempotent; the destructor calls it too). Must run
  /// on the thread that constructed the sink. Lets a worker detach the sink
  /// while keeping its buffers alive for a later merge on another thread.
  void Deactivate();

  struct Entry {
    std::shared_ptr<TensorImpl> impl;
    std::vector<float> grad;  // same length as impl->value
  };

  /// Leaves this sink captured, in first-touch order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Adds the buffered gradients into the shared impl->grad fields. Call
  /// after the sink is deactivated (destructor ran) or from the owning
  /// thread outside any backward pass; not thread-safe across sinks.
  void MergeIntoShared();

 private:
  friend std::vector<float>* GradTarget(const std::shared_ptr<TensorImpl>&);
  std::vector<float>* BufferFor(const std::shared_ptr<TensorImpl>& impl);

  std::vector<Entry> entries_;
  std::unordered_map<TensorImpl*, size_t> index_;
  ScopedGradSink* previous_;
  bool active_ = true;
};

/// The buffer a backward closure should accumulate `impl`'s gradient into:
/// the active sink's private buffer for leaves when a sink is installed on
/// this thread, the node's own grad otherwise.
std::vector<float>* GradTarget(const std::shared_ptr<TensorImpl>& impl);

}  // namespace internal

}  // namespace imr::tensor

#endif  // IMR_TENSOR_TENSOR_H_
