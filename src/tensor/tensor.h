// A small dense float tensor with reverse-mode automatic differentiation.
//
// Design: Tensor is a cheap value-semantic handle onto a shared node
// (TensorImpl). Each op produces a fresh node that records its parents and a
// backward closure; Tensor::Backward() runs the closures in reverse
// topological order. Only rank-1 and rank-2 tensors are used by IMR models,
// which keeps every op simple, cache-friendly and easy to verify with
// numerical gradient checks (see nn/gradcheck.h).
#ifndef IMR_TENSOR_TENSOR_H_
#define IMR_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace imr::tensor {

class Tensor;

namespace internal {

struct TensorImpl {
  std::vector<int> shape;
  std::vector<float> value;
  std::vector<float> grad;  // allocated lazily, same length as value
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  // Reads this->grad, accumulates into parents' grads. Null for leaves.
  std::function<void(TensorImpl&)> backward_fn;

  // Row-sparse gradient tracking for rank-2 leaves that receive gradients
  // only through GatherRows (embedding tables; see Tensor::
  // set_row_sparse_grad). `grad` stays a dense buffer whose rows outside
  // `touched_rows` are all-zero, so every dense reader (gradcheck, FGSM,
  // serialization) keeps working unchanged — but ZeroGrad, the gradient
  // merge, and the optimizers only walk the touched rows. `touched_rows`
  // is kept sorted and duplicate-free. `grad_dense` flips when any op
  // other than GatherRows accumulates into the grad; consumers then fall
  // back to full dense scans until the next ZeroGrad.
  bool row_sparse = false;
  bool grad_dense = false;
  std::vector<int> touched_rows;
  // Called by GatherRows' forward with the rows about to be read, before
  // any value is loaded. Lazily-updating optimizers (Adam) install this to
  // replay deferred per-row updates exactly when a stale row becomes
  // visible again, which keeps sparse training trajectories bit-identical
  // to dense ones. Must be idempotent and safe to call concurrently from
  // data-parallel forward passes (the installer provides its own locking).
  std::function<void(const std::vector<int>&)> row_materializer;

  TensorImpl() = default;
  // Returns value/grad storage to the destroying thread's buffer pool.
  ~TensorImpl();

  size_t size() const { return value.size(); }
  // Makes grad a zeroed buffer the length of value, reusing existing
  // capacity when possible (no-op when the length already matches).
  void EnsureGrad();
};

}  // namespace internal

/// Returns true when ops should record the autograd graph. Defaults to true.
bool GradModeEnabled();

/// Process-wide row-sparse gradient counters (relaxed atomics, PoolStats
/// style: safe to snapshot from any thread; each counter is individually
/// exact). One optimizer consumption of a row-sparse-capable parameter adds
/// its table's row count to rows_total and the rows it actually walked to
/// rows_touched, so rows_touched/rows_total is the fraction of embedding
/// rows a step really paid for. dense_fallbacks counts gradients of
/// row-sparse-capable parameters that degraded to a dense full-table scan
/// (a non-GatherRows op wrote into the grad, or a dense-only optimizer
/// feature like SGD weight decay was active).
struct SparseGradStatsSnapshot {
  uint64_t rows_touched = 0;
  uint64_t rows_total = 0;
  uint64_t dense_fallbacks = 0;
};

/// Snapshot of the row-sparse gradient counters.
SparseGradStatsSnapshot SparseGradStats();

/// Zeroes the row-sparse gradient counters. Call from a quiescent point.
void ResetSparseGradStats();

/// RAII guard that disables graph recording (used during evaluation).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Dense float tensor handle. Copying shares the underlying node.
class Tensor {
 public:
  /// Empty (null) tensor; most APIs require a non-null tensor.
  Tensor() = default;

  /// Fresh leaf tensors.
  static Tensor Zeros(std::vector<int> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int> shape, float fill,
                     bool requires_grad = false);
  static Tensor FromData(std::vector<int> shape, std::vector<float> data,
                         bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }

  const std::vector<int>& shape() const;
  int rank() const;
  /// Total number of elements.
  size_t size() const;
  /// Rows/cols of a rank-2 tensor; a rank-1 tensor is treated as one row.
  int rows() const;
  int cols() const;

  bool requires_grad() const;
  void set_requires_grad(bool requires_grad);

  const std::vector<float>& data() const;
  std::vector<float>& mutable_data();
  /// Gradient buffer; empty until backward touched this node.
  const std::vector<float>& grad() const;
  /// Mutable gradient buffer. Direct writes cannot be row-tracked, so this
  /// marks a row-sparse-capable tensor's gradient dense for the step.
  std::vector<float>& mutable_grad();

  /// Opts a rank-2 leaf into row-sparse gradient tracking: GatherRows'
  /// backward records which rows it touched, and ZeroGrad / the gradient
  /// merge / the optimizers walk only those rows instead of the whole
  /// vocab x dim table. Any other op accumulating into the grad falls back
  /// to dense for that step (see grad_is_row_sparse). The grad buffer
  /// itself stays dense with untouched rows all-zero, so reads need no
  /// special casing. Enabled by nn::Embedding for its table.
  void set_row_sparse_grad(bool row_sparse);
  bool row_sparse_grad() const;
  /// True when the accumulated gradient of this step is fully described by
  /// grad_touched_rows(): the tensor is row-sparse-capable and no dense op
  /// wrote into the grad since the last ZeroGrad.
  bool grad_is_row_sparse() const;
  /// Rows with possibly-nonzero gradient, ascending and duplicate-free.
  /// Meaningful only while grad_is_row_sparse() is true.
  const std::vector<int>& grad_touched_rows() const;

  /// Installs (or clears, with nullptr) the hook GatherRows' forward calls
  /// with the rows it is about to read. Used by Adam to replay deferred
  /// row updates before a stale row's value becomes visible; the installer
  /// must clear the hook before being destroyed and handle concurrent
  /// calls. Last installer wins.
  void set_row_materializer(std::function<void(const std::vector<int>&)> fn);

  float item() const;           // requires size()==1
  float at(int i) const;        // rank-1 access
  float at(int r, int c) const; // rank-2 access

  void ZeroGrad();

  /// Runs reverse-mode autodiff from this scalar node.
  void Backward();

  std::string DebugString() const;

  // --- internal plumbing for ops ---
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}
  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<internal::TensorImpl> impl_;
};

namespace internal {

/// Counter hooks for SparseGradStats (relaxed atomics; see the snapshot
/// struct for semantics). Called by the optimizers when they consume a
/// row-sparse-capable gradient and by the fallback transition points.
void NoteSparseRowsConsumed(uint64_t rows_touched, uint64_t rows_total);
void NoteDenseFallback();

/// Creates a result node wired to its parents; `backward` may be null when
/// grad mode is off or no parent requires grad.
Tensor MakeResult(std::vector<int> shape, std::vector<float> value,
                  std::vector<Tensor> parents,
                  std::function<void(TensorImpl&)> backward);

/// Thread-local redirection of leaf-gradient accumulation, enabling
/// data-parallel backward passes over shared parameters.
///
/// While a sink is active on a thread, backward closures running on that
/// thread accumulate gradients of LEAF nodes (parameters: requires_grad set,
/// no backward_fn) into a private per-sink buffer instead of the shared
/// TensorImpl::grad. Intermediate nodes are created per-thread during a
/// data-parallel forward pass, so their member grad is already private and
/// stays in use. After the parallel region the caller merges sinks into the
/// shared grads sequentially (in a fixed order, keeping float accumulation
/// deterministic for a fixed chunk count).
class ScopedGradSink {
 public:
  /// Installs the sink on the constructing thread.
  ScopedGradSink();
  ~ScopedGradSink();
  ScopedGradSink(const ScopedGradSink&) = delete;
  ScopedGradSink& operator=(const ScopedGradSink&) = delete;

  /// Uninstalls the sink (idempotent; the destructor calls it too). Must run
  /// on the thread that constructed the sink. Lets a worker detach the sink
  /// while keeping its buffers alive for a later merge on another thread.
  void Deactivate();

  struct Entry {
    std::shared_ptr<TensorImpl> impl;
    std::vector<float> grad;  // same length as impl->value
    // Row-sparse entries hand their buffer over dirty and zero each row on
    // first touch, so a data-parallel chunk's bookkeeping stays O(touched
    // rows); touched_rows is sorted-unique. Dense entries are zero-filled
    // as before.
    bool row_sparse = false;
    std::vector<int> touched_rows;
  };

  /// Leaves this sink captured, in first-touch order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Adds the buffered gradients into the shared impl->grad fields. Call
  /// after the sink is deactivated (destructor ran) or from the owning
  /// thread outside any backward pass; not thread-safe across sinks.
  /// Row-sparse entries merge (and record into the shared tensor's
  /// touched-row set) only their touched rows, in ascending row order;
  /// because each element still receives its per-sink contributions in the
  /// same ascending-chunk merge order as the dense path, data-parallel
  /// training stays bit-identical at any thread count.
  void MergeIntoShared();

 private:
  friend std::vector<float>* GradTarget(const std::shared_ptr<TensorImpl>&);
  friend std::vector<float>* GradTargetRows(
      const std::shared_ptr<TensorImpl>&, const std::vector<int>&);
  std::vector<float>* BufferFor(const std::shared_ptr<TensorImpl>& impl);
  std::vector<float>* BufferForRows(const std::shared_ptr<TensorImpl>& impl,
                                    const std::vector<int>& rows);
  Entry& EntryFor(const std::shared_ptr<TensorImpl>& impl, bool row_sparse);

  std::vector<Entry> entries_;
  std::unordered_map<TensorImpl*, size_t> index_;
  ScopedGradSink* previous_;
  bool active_ = true;
};

/// The buffer a backward closure should accumulate `impl`'s gradient into:
/// the active sink's private buffer for leaves when a sink is installed on
/// this thread, the node's own grad otherwise. Writing through this target
/// is a dense write: a row-sparse-capable leaf falls back to dense
/// gradient handling for the step (counted in SparseGradStats).
std::vector<float>* GradTarget(const std::shared_ptr<TensorImpl>& impl);

/// Row-sparse variant used by GatherRows' backward: same target selection
/// as GradTarget, but records `rows` (unsorted, duplicates allowed) in the
/// destination's touched-row set instead of going dense. For targets that
/// are not row-sparse-capable this is exactly GradTarget.
std::vector<float>* GradTargetRows(const std::shared_ptr<TensorImpl>& impl,
                                   const std::vector<int>& rows);

}  // namespace internal

}  // namespace imr::tensor

#endif  // IMR_TENSOR_TENSOR_H_
