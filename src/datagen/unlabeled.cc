#include "datagen/unlabeled.h"

#include <algorithm>

#include "util/logging.h"

namespace imr::datagen {

UnlabeledCorpus SampleUnlabeledCorpus(const World& world,
                                      const TemplateRealiser& realiser,
                                      const UnlabeledConfig& config) {
  IMR_CHECK_GE(config.sentences_per_fact, 1);
  util::Rng rng(config.seed);
  const kg::KnowledgeGraph& graph = world.graph;
  UnlabeledCorpus corpus;

  auto emit = [&](kg::EntityId head, kg::EntityId tail) {
    // Unlabeled text carries no relation label; realise as background-only
    // co-occurrence (relation 0). The proximity graph only needs counts.
    text::Sentence sentence = realiser.Realise(
        kg::kNaRelation, graph.entity(head).name, graph.entity(tail).name,
        &rng);
    sentence.head_entity = head;
    sentence.tail_entity = tail;
    corpus.sentences.push_back(std::move(sentence));
  };

  size_t total = 0;
  for (const kg::Triple& fact : graph.triples()) {
    if (!rng.Bernoulli(config.fact_coverage)) continue;  // unmentioned pair
    // Zipf tail on top of a uniform base, capped; mean ~ sentences_per_fact.
    const int base = 1 + static_cast<int>(rng.UniformInt(
                             static_cast<uint64_t>(config.sentences_per_fact)));
    const int tail = static_cast<int>(
        rng.Zipf(static_cast<uint64_t>(config.max_sentences_per_pair),
                 config.zipf_exponent));
    const int count =
        std::min(config.max_sentences_per_pair, base + tail - 1);
    for (int s = 0; s < count; ++s) {
      kg::EntityId tail = fact.tail;
      if (rng.Bernoulli(config.role_mixing)) {
        const auto& tails =
            world.tail_role[static_cast<size_t>(fact.relation)];
        tail = tails[rng.UniformInt(tails.size())];
      }
      emit(fact.head, tail);
      ++total;
    }
  }

  // Random noise co-occurrences.
  const size_t noise = static_cast<size_t>(
      static_cast<double>(total) * config.random_noise);
  const int num_entities = graph.num_entities();
  for (size_t i = 0; i < noise; ++i) {
    const auto a = static_cast<kg::EntityId>(
        rng.UniformInt(static_cast<uint64_t>(num_entities)));
    auto b = static_cast<kg::EntityId>(
        rng.UniformInt(static_cast<uint64_t>(num_entities)));
    if (a == b) b = (b + 1) % num_entities;
    emit(a, b);
  }
  return corpus;
}

}  // namespace imr::datagen
