#include "datagen/presets.h"

#include <algorithm>

#include "util/logging.h"

namespace imr::datagen {

namespace {

SyntheticDataset Build(const std::string& name, const WorldConfig& world_cfg,
                       const TemplateConfig& template_cfg,
                       const DistantSupervisionConfig& ds_cfg,
                       const UnlabeledConfig& unlabeled_cfg) {
  SyntheticDataset dataset(template_cfg);
  dataset.name = name;
  dataset.world = BuildWorld(world_cfg);
  dataset.corpus =
      SampleDistantSupervision(dataset.world, dataset.realiser, ds_cfg);
  dataset.unlabeled =
      SampleUnlabeledCorpus(dataset.world, dataset.realiser, unlabeled_cfg);
  return dataset;
}

int Scaled(int base, double scale) {
  return std::max(2, static_cast<int>(base * scale));
}

}  // namespace

SyntheticDataset MakeNytLike(const PresetOptions& options) {
  WorldConfig world_cfg;
  world_cfg.num_relations = 53;
  world_cfg.pairs_per_relation = Scaled(40, options.scale);
  world_cfg.entity_reuse = 0.5;
  world_cfg.extra_type_prob = 0.3;
  world_cfg.seed = options.seed;

  TemplateConfig template_cfg;
  template_cfg.num_relations = 53;
  template_cfg.triggers_per_relation = 6;
  template_cfg.background_vocab = 800;
  template_cfg.seed = options.seed + 1;

  DistantSupervisionConfig ds_cfg;
  ds_cfg.train_fraction = 0.6;
  ds_cfg.na_pair_ratio = 1.0;
  ds_cfg.noise_rate = 0.35;        // NYT distant supervision is noisy
  ds_cfg.na_false_positive = 0.05;
  ds_cfg.zipf_exponent = 1.9;      // heaviest singleton share (Fig. 1a)
  ds_cfg.max_sentences_per_pair = 60;
  ds_cfg.seed = options.seed + 2;

  UnlabeledConfig unlabeled_cfg;
  unlabeled_cfg.sentences_per_fact = 6;
  unlabeled_cfg.role_mixing = 0.4;
  unlabeled_cfg.random_noise = 0.3;
  unlabeled_cfg.fact_coverage = 0.65;  // Wikipedia misses many NYT pairs
  unlabeled_cfg.seed = options.seed + 3;

  return Build("nyt", world_cfg, template_cfg, ds_cfg, unlabeled_cfg);
}

SyntheticDataset MakeGdsLike(const PresetOptions& options) {
  WorldConfig world_cfg;
  world_cfg.num_relations = 5;
  world_cfg.pairs_per_relation = Scaled(90, options.scale);
  world_cfg.entity_reuse = 0.6;
  world_cfg.extra_type_prob = 0.3;
  world_cfg.seed = options.seed + 10;

  TemplateConfig template_cfg;
  template_cfg.num_relations = 5;
  template_cfg.triggers_per_relation = 8;
  template_cfg.background_vocab = 500;
  template_cfg.seed = options.seed + 11;

  DistantSupervisionConfig ds_cfg;
  ds_cfg.train_fraction = 0.7;     // GDS has a larger train share
  ds_cfg.na_pair_ratio = 0.6;
  ds_cfg.noise_rate = 0.2;         // human-seeded corpus, milder noise
  ds_cfg.na_false_positive = 0.04;
  ds_cfg.zipf_exponent = 1.6;      // milder tail (Fig. 1b)
  ds_cfg.max_sentences_per_pair = 40;
  ds_cfg.seed = options.seed + 12;

  UnlabeledConfig unlabeled_cfg;
  unlabeled_cfg.sentences_per_fact = 6;
  unlabeled_cfg.role_mixing = 0.4;
  unlabeled_cfg.random_noise = 0.3;
  unlabeled_cfg.fact_coverage = 0.85;
  unlabeled_cfg.seed = options.seed + 13;

  return Build("gds", world_cfg, template_cfg, ds_cfg, unlabeled_cfg);
}

SyntheticDataset MakeDataset(const std::string& name,
                             const PresetOptions& options) {
  if (name == "nyt") return MakeNytLike(options);
  if (name == "gds") return MakeGdsLike(options);
  IMR_LOG(Error) << "unknown dataset preset '" << name
                 << "', falling back to gds";
  return MakeGdsLike(options);
}

}  // namespace imr::datagen
