#include "datagen/distant_supervision.h"

#include <algorithm>

#include "util/logging.h"

namespace imr::datagen {

namespace {

// Realises all sentences for one labeled pair into `out`.
void EmitPair(const kg::KnowledgeGraph& graph, const TemplateRealiser& realiser,
              const DistantSupervisionConfig& config, const kg::Triple& pair,
              int num_sentences, util::Rng* rng,
              std::vector<text::LabeledSentence>* out) {
  const std::string& head_name = graph.entity(pair.head).name;
  const std::string& tail_name = graph.entity(pair.tail).name;
  const int num_relations = graph.num_relations();
  for (int s = 0; s < num_sentences; ++s) {
    int realised_relation = pair.relation;
    if (pair.relation == kg::kNaRelation) {
      // NA pairs mostly co-occur without relational language, but a small
      // fraction of sentences look relational (hard negatives).
      if (rng->Bernoulli(config.na_false_positive)) {
        realised_relation =
            1 + static_cast<int>(rng->UniformInt(
                    static_cast<uint64_t>(num_relations - 1)));
      } else {
        realised_relation = kg::kNaRelation;
      }
    } else if (rng->Bernoulli(config.noise_rate)) {
      // Wrong-label noise: the pair co-occurs for some other reason.
      realised_relation = kg::kNaRelation;
    }
    text::LabeledSentence labeled;
    labeled.sentence =
        realiser.Realise(realised_relation, head_name, tail_name, rng);
    labeled.sentence.head_entity = pair.head;
    labeled.sentence.tail_entity = pair.tail;
    labeled.relation = pair.relation;
    labeled.true_relation = realised_relation;
    out->push_back(std::move(labeled));
  }
}

}  // namespace

DistantSupervisionCorpus SampleDistantSupervision(
    const World& world, const TemplateRealiser& realiser,
    const DistantSupervisionConfig& config) {
  IMR_CHECK_GT(config.train_fraction, 0.0);
  IMR_CHECK_LT(config.train_fraction, 1.0);
  IMR_CHECK_GE(config.max_sentences_per_pair, 1);
  util::Rng rng(config.seed);
  const kg::KnowledgeGraph& graph = world.graph;

  DistantSupervisionCorpus corpus;

  // Split ground-truth facts into train/test pairs.
  std::vector<kg::Triple> facts = graph.triples();
  rng.Shuffle(&facts);
  const size_t train_count = static_cast<size_t>(
      static_cast<double>(facts.size()) * config.train_fraction);
  for (size_t i = 0; i < facts.size(); ++i) {
    if (i < train_count)
      corpus.train_pairs.push_back(facts[i]);
    else
      corpus.test_pairs.push_back(facts[i]);
  }

  // NA pairs: random entity pairs with no fact, split the same way.
  const size_t total_na = static_cast<size_t>(
      static_cast<double>(facts.size()) * config.na_pair_ratio);
  size_t made = 0;
  size_t attempts = 0;
  std::vector<kg::Triple> na_pairs;
  const int num_entities = graph.num_entities();
  while (made < total_na && attempts < total_na * 40 + 100) {
    ++attempts;
    const auto head = static_cast<kg::EntityId>(
        rng.UniformInt(static_cast<uint64_t>(num_entities)));
    const auto tail = static_cast<kg::EntityId>(
        rng.UniformInt(static_cast<uint64_t>(num_entities)));
    if (head == tail) continue;
    if (graph.PairRelation(head, tail) != kg::kNaRelation) continue;
    bool duplicate = false;
    for (const kg::Triple& existing : na_pairs) {
      if (existing.head == head && existing.tail == tail) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    na_pairs.push_back({head, kg::kNaRelation, tail});
    ++made;
  }
  const size_t na_train = static_cast<size_t>(
      static_cast<double>(na_pairs.size()) * config.train_fraction);
  for (size_t i = 0; i < na_pairs.size(); ++i) {
    if (i < na_train)
      corpus.train_pairs.push_back(na_pairs[i]);
    else
      corpus.test_pairs.push_back(na_pairs[i]);
  }

  // Sentences per pair: Zipf-tailed, so most pairs get 1-3 sentences and a
  // few get dozens (paper Fig. 1).
  auto emit_split = [&](const std::vector<kg::Triple>& pairs,
                        std::vector<text::LabeledSentence>* out) {
    for (const kg::Triple& pair : pairs) {
      const int count = static_cast<int>(
          rng.Zipf(static_cast<uint64_t>(config.max_sentences_per_pair),
                   config.zipf_exponent));
      EmitPair(graph, realiser, config, pair, count, &rng, out);
    }
  };
  emit_split(corpus.train_pairs, &corpus.train);
  emit_split(corpus.test_pairs, &corpus.test);
  return corpus;
}

}  // namespace imr::datagen
