// Distant-supervision corpus sampler. Given a world and a realiser, it
// splits the ground-truth pairs into train/test, adds NA pairs, draws a
// Zipf-tailed number of sentences per pair (reproducing the long-tail of
// paper Fig. 1), and injects wrong-label noise: with probability
// `noise_rate` a sentence attached to a pair labeled r is realised without
// r's lexical evidence (the "Barack Obama visits Hawaii" failure mode).
#ifndef IMR_DATAGEN_DISTANT_SUPERVISION_H_
#define IMR_DATAGEN_DISTANT_SUPERVISION_H_

#include <vector>

#include "datagen/templates.h"
#include "datagen/world.h"
#include "text/sentence.h"

namespace imr::datagen {

struct DistantSupervisionConfig {
  double train_fraction = 0.6;    // of ground-truth pairs
  double na_pair_ratio = 1.0;     // NA pairs per non-NA pair
  int max_sentences_per_pair = 60;
  double zipf_exponent = 1.6;     // tail heaviness of sentences-per-pair
  double noise_rate = 0.35;       // wrong-label sentence probability
  double na_false_positive = 0.05;// NA sentences that *do* carry a trigger
  uint64_t seed = 43;
};

struct DistantSupervisionCorpus {
  std::vector<text::LabeledSentence> train;
  std::vector<text::LabeledSentence> test;
  // Pairs used in each split (head, tail, relation) for bookkeeping.
  std::vector<kg::Triple> train_pairs;  // relation may be kNaRelation
  std::vector<kg::Triple> test_pairs;
};

DistantSupervisionCorpus SampleDistantSupervision(
    const World& world, const TemplateRealiser& realiser,
    const DistantSupervisionConfig& config);

}  // namespace imr::datagen

#endif  // IMR_DATAGEN_DISTANT_SUPERVISION_H_
