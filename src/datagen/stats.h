// Corpus statistics used by the Table II / Fig. 1 harnesses and the
// bucketed analyses of Figs. 6-7.
#ifndef IMR_DATAGEN_STATS_H_
#define IMR_DATAGEN_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "text/sentence.h"

namespace imr::datagen {

/// (head, tail) -> number of sentences mentioning the pair.
using PairCounts = std::map<std::pair<int64_t, int64_t>, int>;

PairCounts CountPairs(const std::vector<text::LabeledSentence>& sentences);
PairCounts CountPairsUnlabeled(const std::vector<text::Sentence>& sentences);

/// Histogram buckets of pair frequency used in paper Fig. 1:
/// [1], [2,9], [10,99], [100, inf).
struct FrequencyHistogram {
  static constexpr int kNumBuckets = 4;
  int64_t buckets[kNumBuckets] = {0, 0, 0, 0};
  static const char* BucketLabel(int b);
  static int BucketOf(int count);
};

FrequencyHistogram HistogramOf(const PairCounts& counts);

/// Table II row: corpus size summary.
struct CorpusStats {
  int64_t num_sentences = 0;
  int64_t num_entity_pairs = 0;
};

CorpusStats StatsOf(const std::vector<text::LabeledSentence>& sentences);

}  // namespace imr::datagen

#endif  // IMR_DATAGEN_STATS_H_
