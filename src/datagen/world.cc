#include "datagen/world.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace imr::datagen {

namespace {

// Assigns a (head_type, tail_type) signature to each relation from a small
// pool, so many relations share the same signature. This mirrors Freebase,
// where dozens of relations link person-location or person-organization:
// entity types prune impossible relations but do not identify the correct
// one (otherwise the type feature alone would solve the task, which is
// neither realistic nor what the paper reports for PA-T).
void TypeSignature(int relation, int* head_type, int* tail_type) {
  // person=0, organization=1, location=2, product=3, art=4, event=5.
  static constexpr int kPool[][2] = {
      {0, 2}, {0, 1}, {1, 2}, {0, 0}, {1, 1}, {2, 2}, {0, 4}, {1, 3},
  };
  constexpr int kPoolSize = 8;
  *head_type = kPool[relation % kPoolSize][0];
  *tail_type = kPool[relation % kPoolSize][1];
}

}  // namespace

World BuildWorld(const WorldConfig& config) {
  IMR_CHECK_GE(config.num_relations, 2);
  IMR_CHECK_GE(config.pairs_per_relation, 1);
  IMR_CHECK_GT(config.entity_reuse, 0.0);
  util::Rng rng(config.seed);

  World world;
  kg::KnowledgeGraph& graph = world.graph;
  graph.AddRelation("NA");
  for (int r = 1; r < config.num_relations; ++r) {
    int head_type = 0, tail_type = 0;
    TypeSignature(r, &head_type, &tail_type);
    graph.AddRelation(util::StrFormat("/rel_%02d/role_%02d_to_%02d", r,
                                      head_type, tail_type),
                      head_type, tail_type);
  }

  world.head_role.resize(static_cast<size_t>(config.num_relations));
  world.tail_role.resize(static_cast<size_t>(config.num_relations));

  // Role cluster sizes: reuse < 1 shrinks the entity pool so entities
  // appear in multiple facts.
  const int role_size = std::max(
      2, static_cast<int>(config.pairs_per_relation * config.entity_reuse));

  for (int r = 1; r < config.num_relations; ++r) {
    const kg::RelationSchema& schema = graph.relation(r);
    auto make_role = [&](const char* role, int type,
                         int cluster) -> std::vector<kg::EntityId> {
      std::vector<kg::EntityId> members;
      members.reserve(static_cast<size_t>(role_size));
      for (int i = 0; i < role_size; ++i) {
        std::vector<int> types = {type};
        if (rng.Bernoulli(config.extra_type_prob)) {
          const int extra =
              static_cast<int>(rng.UniformInt(kg::kNumCoarseTypes));
          if (extra != type) types.push_back(extra);
        }
        members.push_back(graph.AddEntity(
            util::StrFormat("ent_r%02d_%s_%02d", r, role, i),
            std::move(types), cluster));
      }
      return members;
    };
    world.head_role[static_cast<size_t>(r)] =
        make_role("h", schema.head_type, 2 * r);
    world.tail_role[static_cast<size_t>(r)] =
        make_role("t", schema.tail_type, 2 * r + 1);

    // Ground-truth facts: sample distinct (head, tail) pairs.
    const auto& heads = world.head_role[static_cast<size_t>(r)];
    const auto& tails = world.tail_role[static_cast<size_t>(r)];
    int made = 0;
    int attempts = 0;
    while (made < config.pairs_per_relation &&
           attempts < config.pairs_per_relation * 20) {
      ++attempts;
      const kg::EntityId head = heads[rng.UniformInt(heads.size())];
      const kg::EntityId tail = tails[rng.UniformInt(tails.size())];
      if (graph.PairRelation(head, tail) != kg::kNaRelation) continue;
      graph.AddTriple(head, r, tail);
      ++made;
    }
  }
  return world;
}

}  // namespace imr::datagen
