#include "datagen/templates.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace imr::datagen {

TemplateRealiser::TemplateRealiser(const TemplateConfig& config)
    : config_(config) {
  IMR_CHECK_GE(config.num_relations, 1);
  IMR_CHECK_GE(config.triggers_per_relation, 1);
  IMR_CHECK_GE(config.background_vocab, 10);
  IMR_CHECK_GE(config.min_length, 4);
  IMR_CHECK_GE(config.max_length, config.min_length);
  triggers_.resize(static_cast<size_t>(config.num_relations));
  for (int r = 1; r < config.num_relations; ++r) {
    for (int j = 0; j < config.triggers_per_relation; ++j) {
      triggers_[static_cast<size_t>(r)].push_back(
          util::StrFormat("rel%02d_trig%d", r, j));
    }
  }
  background_.reserve(static_cast<size_t>(config.background_vocab));
  for (int i = 0; i < config.background_vocab; ++i)
    background_.push_back(util::StrFormat("bg%04d", i));
}

const std::vector<std::string>& TemplateRealiser::Triggers(
    int relation) const {
  IMR_CHECK_GE(relation, 0);
  IMR_CHECK_LT(relation, static_cast<int>(triggers_.size()));
  return triggers_[static_cast<size_t>(relation)];
}

text::Sentence TemplateRealiser::Realise(int relation,
                                         const std::string& head_name,
                                         const std::string& tail_name,
                                         util::Rng* rng) const {
  IMR_CHECK(rng != nullptr);
  const int length = static_cast<int>(
      rng->UniformRange(config_.min_length, config_.max_length));
  // Place head and tail at distinct random positions.
  int head_pos = static_cast<int>(rng->UniformInt(length));
  int tail_pos = static_cast<int>(rng->UniformInt(length - 1));
  if (tail_pos >= head_pos) ++tail_pos;

  text::Sentence sentence;
  sentence.tokens.resize(static_cast<size_t>(length));
  sentence.head_index = head_pos;
  sentence.tail_index = tail_pos;
  for (int i = 0; i < length; ++i) {
    sentence.tokens[static_cast<size_t>(i)] =
        background_[rng->UniformInt(background_.size())];
  }
  sentence.tokens[static_cast<size_t>(head_pos)] = head_name;
  sentence.tokens[static_cast<size_t>(tail_pos)] = tail_name;

  if (relation != 0 && !triggers_[static_cast<size_t>(relation)].empty()) {
    // Drop 1-3 trigger words into background slots, biased to sit between
    // or next to the entities (where real relational phrases live).
    const auto& trigs = triggers_[static_cast<size_t>(relation)];
    const int n_triggers = 1 + static_cast<int>(rng->UniformInt(3));
    const int lo = std::min(head_pos, tail_pos);
    const int hi = std::max(head_pos, tail_pos);
    for (int k = 0; k < n_triggers; ++k) {
      int pos;
      if (hi - lo > 1 && rng->Bernoulli(0.7)) {
        pos = lo + 1 + static_cast<int>(rng->UniformInt(
                          static_cast<uint64_t>(hi - lo - 1)));
      } else {
        pos = static_cast<int>(rng->UniformInt(length));
      }
      if (pos == head_pos || pos == tail_pos) continue;
      sentence.tokens[static_cast<size_t>(pos)] =
          trigs[rng->UniformInt(trigs.size())];
    }
  }
  return sentence;
}

}  // namespace imr::datagen
