// Template-based sentence realiser. Each relation owns a small trigger
// vocabulary and a set of templates mixing trigger words, background words
// and the two entity placeholders; NA/noise sentences use background-only
// templates. This is the synthetic stand-in for real NYT/GDS text: what the
// encoders must learn is exactly "trigger words near the entity pair imply
// the relation", which is the lexical signal in the real corpora.
#ifndef IMR_DATAGEN_TEMPLATES_H_
#define IMR_DATAGEN_TEMPLATES_H_

#include <string>
#include <vector>

#include "text/sentence.h"
#include "util/rng.h"

namespace imr::datagen {

struct TemplateConfig {
  int num_relations = 53;         // including NA
  int triggers_per_relation = 6;  // relation-indicative words
  int background_vocab = 800;     // filler words shared by all sentences
  int min_length = 8;             // tokens, including the two entities
  int max_length = 26;
  uint64_t seed = 29;
};

class TemplateRealiser {
 public:
  explicit TemplateRealiser(const TemplateConfig& config);

  /// A sentence expressing `relation` between the two entity names.
  /// relation == kNaRelation yields a background-only sentence.
  text::Sentence Realise(int relation, const std::string& head_name,
                         const std::string& tail_name,
                         util::Rng* rng) const;

  /// Trigger vocabulary of a relation (empty for NA).
  const std::vector<std::string>& Triggers(int relation) const;

  /// All background words.
  const std::vector<std::string>& BackgroundWords() const {
    return background_;
  }

 private:
  TemplateConfig config_;
  std::vector<std::vector<std::string>> triggers_;  // [relation]
  std::vector<std::string> background_;
};

}  // namespace imr::datagen

#endif  // IMR_DATAGEN_TEMPLATES_H_
