// Unlabeled-corpus sampler, the synthetic stand-in for the Wikipedia dump
// used in the paper to build the entity proximity graph. Entities of the
// same relation roles co-occur densely: a head of relation r appears in
// sentences not only with its own tail but with other tails of r
// (universities co-occur with many cities). Pair frequencies are
// Zipf-tailed so Fig. 6's quantile analysis has a spread to bucket over.
#ifndef IMR_DATAGEN_UNLABELED_H_
#define IMR_DATAGEN_UNLABELED_H_

#include <vector>

#include "datagen/templates.h"
#include "datagen/world.h"
#include "text/sentence.h"

namespace imr::datagen {

struct UnlabeledConfig {
  // Expected number of co-occurrence sentences per ground-truth pair.
  int sentences_per_fact = 8;
  double zipf_exponent = 1.3;  // spread of per-pair frequencies
  int max_sentences_per_pair = 120;
  // Probability that a sentence pairs a head of r with a *different* tail
  // of r (role-level mixing that creates the shared-neighbour structure).
  double role_mixing = 0.5;
  // Extra fully random co-occurrences, as a fraction of the total (noise
  // edges in the proximity graph).
  double random_noise = 0.1;
  // Fraction of ground-truth facts that appear in the unlabeled corpus at
  // all. Wikipedia does not mention every Freebase pair; uncovered pairs
  // get no proximity-graph edges, so their MR vectors stay uninformative
  // (the regime paper Fig. 6's low quantiles measure).
  double fact_coverage = 1.0;
  uint64_t seed = 59;
};

struct UnlabeledCorpus {
  std::vector<text::Sentence> sentences;
};

UnlabeledCorpus SampleUnlabeledCorpus(const World& world,
                                      const TemplateRealiser& realiser,
                                      const UnlabeledConfig& config);

}  // namespace imr::datagen

#endif  // IMR_DATAGEN_UNLABELED_H_
