// Dataset presets shaped after the paper's two benchmarks (Table II):
//  * NYT-like: 53 relations, large corpus, heavier wrong-label noise;
//  * GDS-like: 5 relations, small corpus, milder noise.
// `scale` multiplies the pair counts so benches can trade time for fidelity.
#ifndef IMR_DATAGEN_PRESETS_H_
#define IMR_DATAGEN_PRESETS_H_

#include <string>

#include "datagen/distant_supervision.h"
#include "datagen/unlabeled.h"
#include "datagen/world.h"

namespace imr::datagen {

/// Everything one experiment needs, bundled.
struct SyntheticDataset {
  std::string name;
  World world;
  TemplateRealiser realiser;
  DistantSupervisionCorpus corpus;
  UnlabeledCorpus unlabeled;

  explicit SyntheticDataset(const TemplateConfig& template_config)
      : realiser(template_config) {}
};

struct PresetOptions {
  double scale = 1.0;
  uint64_t seed = 7;
};

/// NYT-shaped dataset: 53 relations including NA.
SyntheticDataset MakeNytLike(const PresetOptions& options = {});

/// GDS-shaped dataset: 5 relations including NA.
SyntheticDataset MakeGdsLike(const PresetOptions& options = {});

/// Dispatch by name: "nyt" or "gds".
SyntheticDataset MakeDataset(const std::string& name,
                             const PresetOptions& options = {});

}  // namespace imr::datagen

#endif  // IMR_DATAGEN_PRESETS_H_
