#include "datagen/stats.h"

namespace imr::datagen {

PairCounts CountPairs(const std::vector<text::LabeledSentence>& sentences) {
  PairCounts counts;
  for (const text::LabeledSentence& labeled : sentences) {
    ++counts[{labeled.sentence.head_entity, labeled.sentence.tail_entity}];
  }
  return counts;
}

PairCounts CountPairsUnlabeled(const std::vector<text::Sentence>& sentences) {
  PairCounts counts;
  for (const text::Sentence& sentence : sentences) {
    ++counts[{sentence.head_entity, sentence.tail_entity}];
  }
  return counts;
}

const char* FrequencyHistogram::BucketLabel(int b) {
  static const char* kLabels[kNumBuckets] = {"1", "2-9", "10-99", ">=100"};
  return kLabels[b];
}

int FrequencyHistogram::BucketOf(int count) {
  if (count <= 1) return 0;
  if (count <= 9) return 1;
  if (count <= 99) return 2;
  return 3;
}

FrequencyHistogram HistogramOf(const PairCounts& counts) {
  FrequencyHistogram histogram;
  for (const auto& [pair, count] : counts) {
    ++histogram.buckets[FrequencyHistogram::BucketOf(count)];
  }
  return histogram;
}

CorpusStats StatsOf(const std::vector<text::LabeledSentence>& sentences) {
  CorpusStats stats;
  stats.num_sentences = static_cast<int64_t>(sentences.size());
  stats.num_entity_pairs =
      static_cast<int64_t>(CountPairs(sentences).size());
  return stats;
}

}  // namespace imr::datagen
