// SyntheticWorld builds the knowledge graph that substitutes for Freebase
// in the paper's experiments: typed entities grouped into latent semantic
// clusters, relation schemas with type signatures, and ground-truth triples.
//
// Structure mirrors what makes the paper's method work on real data:
//  * every non-NA relation has a "head role" cluster and a "tail role"
//    cluster (universities/cities, people/employers, ...);
//  * pairs of the same relation are therefore semantically similar, which
//    is exactly the signal the entity proximity graph mines;
//  * entities can carry an extra random type, so the type-embedding head
//    must average multiple types as in paper Section III-B.
#ifndef IMR_DATAGEN_WORLD_H_
#define IMR_DATAGEN_WORLD_H_

#include <cstdint>
#include <vector>

#include "kg/knowledge_graph.h"
#include "util/rng.h"

namespace imr::datagen {

struct WorldConfig {
  int num_relations = 53;        // including NA (id 0)
  int pairs_per_relation = 24;   // ground-truth triples per non-NA relation
  // Fraction of heads/tails reused across pairs of the same relation; a
  // value < 1 means role clusters are smaller than the pair count, so the
  // same entity participates in several facts (long-tail structure).
  double entity_reuse = 0.5;
  double extra_type_prob = 0.3;  // chance of a second random type
  uint64_t seed = 17;
};

struct World {
  kg::KnowledgeGraph graph;
  // Entities playing the head/tail role of each relation (index = relation
  // id; entry 0 is empty for NA).
  std::vector<std::vector<kg::EntityId>> head_role;
  std::vector<std::vector<kg::EntityId>> tail_role;
};

/// Builds a world from the config. Deterministic in config.seed.
World BuildWorld(const WorldConfig& config);

}  // namespace imr::datagen

#endif  // IMR_DATAGEN_WORLD_H_
