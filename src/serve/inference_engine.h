// Batched inference serving over a loaded model snapshot — the paper's
// pipeline with all training machinery stripped away. The engine owns the
// snapshot (model in eval mode, dropout off, no Rng anywhere on the hot
// path), featurizes queries exactly as BagDataset did at training time, and
// offers three calling conventions:
//
//   Predict(query)        synchronous, single request
//   PredictBatch(queries) one parallel pass over util::ThreadPool
//   SubmitAsync(query)    enqueue; a dispatcher thread coalesces queued
//                         requests into micro-batches (flushed at
//                         max_batch or after batch_delay_us) and executes
//                         them as one PredictBatch
//
// Mutual-relation vectors are served through a per-pair LRU cache: the
// Zipf-skewed pair popularity the paper measures (Fig. 1(a)) makes a small
// cache absorb most traffic. Cached and uncached paths are bit-identical
// (the MR vector is a pure function of the embedding rows), and prediction
// itself is deterministic at any thread count — each query is scored
// independently.
#ifndef IMR_SERVE_INFERENCE_ENGINE_H_
#define IMR_SERVE_INFERENCE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/lru_cache.h"
#include "serve/snapshot.h"
#include "text/sentence.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace imr::serve {

struct EngineOptions {
  /// Micro-batch flush size for SubmitAsync; PredictBatch is unaffected.
  int max_batch = 32;
  /// How long the dispatcher waits for more requests before flushing a
  /// partial micro-batch. 0 flushes immediately (no coalescing).
  int batch_delay_us = 200;
  /// Worker threads for batch execution. 0 uses the process-global pool
  /// (util::GlobalThreads); > 0 gives the engine a private pool.
  int threads = 0;
  /// Entity-pair mutual-relation cache capacity; 0 disables caching.
  size_t mr_cache_capacity = 4096;
  /// Ring-buffer size for latency percentile estimates.
  size_t latency_samples = 4096;
  /// Relations returned in Prediction::top.
  int top_k = 3;
};

/// One inference request: an entity pair plus the sentences mentioning it
/// (the bag). Types may be left empty when the snapshot carries an entity
/// table — they are then filled from it.
struct Query {
  int64_t head = -1;
  int64_t tail = -1;
  std::vector<int> head_types;
  std::vector<int> tail_types;
  std::vector<text::Sentence> sentences;
};

struct ScoredRelation {
  int relation = 0;
  std::string name;
  float probability = 0.0f;
};

struct Prediction {
  std::vector<float> probabilities;  // all relations, index == relation id
  std::vector<ScoredRelation> top;   // top_k by probability, descending
  double latency_us = 0.0;           // model forward time for this request
  bool mr_cache_hit = false;
};

struct EngineStats {
  uint64_t requests = 0;
  uint64_t batches = 0;  // micro-batches executed by the dispatcher
  uint64_t mr_cache_hits = 0;
  uint64_t mr_cache_misses = 0;
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Completed requests divided by the wall time between the first request
  /// and the most recent completion.
  double qps = 0.0;
};

class InferenceEngine {
 public:
  InferenceEngine(Snapshot snapshot, const EngineOptions& options);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Loads a snapshot from disk and wraps it in an engine.
  static util::StatusOr<std::unique_ptr<InferenceEngine>> Open(
      const std::string& snapshot_path, const EngineOptions& options = {});

  /// Scores one query synchronously.
  util::StatusOr<Prediction> Predict(const Query& query);

  /// Scores a batch of queries, parallelized over the thread pool. Results
  /// align with the input order and are bit-identical at any thread count.
  std::vector<util::StatusOr<Prediction>> PredictBatch(
      const std::vector<Query>& queries);

  /// Enqueues a query for micro-batched execution; the future resolves
  /// once the dispatcher has run its batch.
  std::future<util::StatusOr<Prediction>> SubmitAsync(Query query);

  /// Resolves entity names against the snapshot's entity table and builds
  /// a query. Sentences with head_index/tail_index < 0 get their mention
  /// indices located by token match against the entity names.
  util::StatusOr<Query> MakeQuery(
      const std::string& head_name, const std::string& tail_name,
      std::vector<text::Sentence> sentences) const;

  EngineStats Stats() const;
  const Snapshot& snapshot() const { return snapshot_; }
  int num_relations() const {
    return snapshot_.manifest.model_config.num_relations;
  }

 private:
  struct PendingRequest {
    Query query;
    std::promise<util::StatusOr<Prediction>> promise;
  };

  util::StatusOr<re::Bag> BuildBag(const Query& query, bool* cache_hit);
  util::StatusOr<Prediction> PredictOne(const Query& query);
  util::ThreadPool& pool();
  void EnsureDispatcherLocked();
  void DispatchLoop();

  Snapshot snapshot_;
  EngineOptions options_;
  std::unique_ptr<util::ThreadPool> own_pool_;  // only when options_.threads > 0
  std::unordered_map<std::string, int64_t> entity_by_name_;

  mutable std::mutex cache_mutex_;
  LruCache<uint64_t, std::vector<float>> mr_cache_;

  mutable std::mutex stats_mutex_;
  uint64_t requests_ = 0;
  uint64_t batches_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  double latency_sum_us_ = 0.0;
  double latency_max_us_ = 0.0;
  std::vector<double> latency_ring_;
  size_t latency_next_ = 0;
  bool first_request_seen_ = false;
  std::chrono::steady_clock::time_point first_request_time_;
  std::chrono::steady_clock::time_point last_completion_time_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<PendingRequest> queue_;
  bool stop_ = false;
  bool dispatcher_started_ = false;
  std::thread dispatcher_;
};

}  // namespace imr::serve

#endif  // IMR_SERVE_INFERENCE_ENGINE_H_
