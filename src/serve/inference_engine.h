// Batched inference serving over a loaded model snapshot — the paper's
// pipeline with all training machinery stripped away. The engine serves an
// immutable ModelState (eval-mode model, dropout off, no Rng anywhere on
// the hot path), featurizes queries exactly as BagDataset did at training
// time, and offers three calling conventions:
//
//   Predict(query)        synchronous, single request
//   PredictBatch(queries) one parallel pass over util::ThreadPool
//   SubmitAsync(query)    enqueue; a dispatcher thread coalesces queued
//                         requests into micro-batches (flushed at
//                         max_batch or after batch_delay_us) and executes
//                         them as one PredictBatch
//
// Hot swap: the serving state is a std::shared_ptr<const ModelState> held
// in an atomic slot. Every request loads the pointer once and uses only
// that state, so SwapState()/Reload() replace the model with one atomic
// store, in-flight requests drain on the generation they started with, and
// no request ever observes a half-swapped model. See model_state.h for the
// protocol; ServeRouter (router.h) drives swaps across N replicas.
//
// Mutual-relation vectors are served through an entity-pair-SHARDED LRU
// cache (sharded_cache.h): hash(generation, e1, e2) picks a shard, each
// shard has its own mutex, so concurrent serving threads no longer
// serialize on one global cache lock. Cache keys embed the generation, so
// a swap can never mix one generation's MR vector into another's forward
// pass. Cached and uncached paths are bit-identical (the MR vector is a
// pure function of the embedding rows), and prediction itself is
// deterministic at any thread count — each query is scored independently.
#ifndef IMR_SERVE_INFERENCE_ENGINE_H_
#define IMR_SERVE_INFERENCE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_state.h"
#include "serve/sharded_cache.h"
#include "serve/snapshot.h"
#include "text/sentence.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace imr::serve {

struct EngineOptions {
  /// Micro-batch flush size for SubmitAsync; PredictBatch is unaffected.
  int max_batch = 32;
  /// How long the dispatcher waits for more requests before flushing a
  /// partial micro-batch. 0 flushes immediately (no coalescing).
  int batch_delay_us = 200;
  /// Worker threads for batch execution. 0 uses the process-global pool
  /// (util::GlobalThreads); > 0 gives the engine a private pool.
  int threads = 0;
  /// Entity-pair mutual-relation cache capacity (total across shards);
  /// 0 disables caching.
  size_t mr_cache_capacity = 4096;
  /// Shards the MR cache is split into (rounded up to a power of two).
  /// 1 reproduces the old single-mutex cache; more shards scale concurrent
  /// Get/Put without changing hit behavior.
  size_t cache_shards = 8;
  /// Ring-buffer size for latency percentile estimates.
  size_t latency_samples = 4096;
  /// Relations returned in Prediction::top.
  int top_k = 3;
  /// Serve with the int8 path: mutual-relation vectors come from the
  /// snapshot's QEMB section (quantized at load when the file has none)
  /// and the model's fusion heads run through the int8 GEMM
  /// (PaModel::EnableQuantizedInference). fp32 and quantized engines over
  /// the same snapshot are compared by bench_serve's accuracy gate.
  bool quantized = false;
  /// kNN-interpolate long-tail predictions when the snapshot carries an
  /// ANNI section (re::KnnPredictor). The predictor's own confidence gate
  /// decides per request whether the vote fires; snapshots without the
  /// section serve unchanged regardless of this flag.
  bool knn = true;
};

/// One inference request: an entity pair plus the sentences mentioning it
/// (the bag). Types may be left empty when the snapshot carries an entity
/// table — they are then filled from it.
struct Query {
  int64_t head = -1;
  int64_t tail = -1;
  std::vector<int> head_types;
  std::vector<int> tail_types;
  std::vector<text::Sentence> sentences;
};

struct ScoredRelation {
  int relation = 0;
  std::string name;
  float probability = 0.0f;
};

struct Prediction {
  std::vector<float> probabilities;  // all relations, index == relation id
  std::vector<ScoredRelation> top;   // top_k by probability, descending
  double latency_us = 0.0;           // model forward time for this request
  bool mr_cache_hit = false;
  /// True when the kNN vote fired for this request (snapshot carried an
  /// ANNI section, the model was below its confidence gate, and neighbors
  /// contributed weight). `probabilities` and `top` then hold the blend.
  bool knn_fired = false;
  /// The snapshot generation that produced this response (1 = the boot
  /// snapshot). Every field of the response is consistent with exactly
  /// this generation, even when a hot swap raced the request.
  uint64_t generation = 0;
};

struct EngineStats {
  uint64_t requests = 0;
  uint64_t batches = 0;  // micro-batches executed by the dispatcher
  /// Requests whose response blended in the kNN vote (Prediction::knn_fired).
  uint64_t knn_fired = 0;
  uint64_t mr_cache_hits = 0;
  uint64_t mr_cache_misses = 0;
  /// Per-shard cache traffic (hits/misses/resident entries), index ==
  /// shard id. Sums to mr_cache_hits/mr_cache_misses.
  std::vector<CacheShardStats> cache_shards;
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double p999_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Completed requests divided by the wall time between the first request
  /// and the most recent completion.
  double qps = 0.0;
  /// Serving generation (increments on every hot swap; 1 = boot snapshot).
  uint64_t generation = 0;
  /// Admission-control counters. A bare engine leaves these zero; a
  /// ServeRouter fills them per replica (and in the aggregate) from its
  /// admission controller: current/peak queue depth, requests admitted,
  /// rejected with kUnavailable at the door, and shed after their deadline
  /// budget expired in queue.
  uint64_t queue_depth = 0;
  uint64_t queue_peak = 0;
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t shed_deadline = 0;
  /// Tensor buffer-pool traffic, process-wide (tensor::PoolStats()). A
  /// warmed-up engine serves cache-hit predictions with zero new pool
  /// misses, so a rising miss count flags an allocation regression.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  /// Row-sparse gradient traffic, process-wide (tensor::SparseGradStats()).
  /// Inference itself takes no gradients, so for a pure serving process
  /// these stay 0; a co-located trainer (train-demo, online fine-tuning)
  /// surfaces its embedding-row touch rate and any dense fallbacks here.
  uint64_t sparse_rows_touched = 0;
  uint64_t sparse_rows_total = 0;
  uint64_t sparse_dense_fallbacks = 0;
};

class InferenceEngine {
 public:
  InferenceEngine(Snapshot snapshot, const EngineOptions& options);
  /// Serves an already prepared state (quantization and eval mode applied
  /// by ModelState::Create). ServeRouter uses this to share one immutable
  /// model across N replicas — replicas exist for lock and queue isolation,
  /// not for copies of the weights.
  InferenceEngine(std::shared_ptr<const ModelState> state,
                  const EngineOptions& options);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Loads a snapshot from disk and wraps it in an engine.
  [[nodiscard]] static util::StatusOr<std::unique_ptr<InferenceEngine>> Open(
      const std::string& snapshot_path, const EngineOptions& options = {});

  /// Scores one query synchronously.
  [[nodiscard]] util::StatusOr<Prediction> Predict(const Query& query);

  /// Scores a batch of queries, parallelized over the thread pool. Results
  /// align with the input order and are bit-identical at any thread count.
  std::vector<util::StatusOr<Prediction>> PredictBatch(
      const std::vector<Query>& queries);

  /// Enqueues a query for micro-batched execution; the future resolves
  /// once the dispatcher has run its batch.
  std::future<util::StatusOr<Prediction>> SubmitAsync(Query query);

  /// Resolves entity names against the snapshot's entity table and builds
  /// a query. Sentences with head_index/tail_index < 0 get their mention
  /// indices located by token match against the entity names.
  [[nodiscard]] util::StatusOr<Query> MakeQuery(
      const std::string& head_name, const std::string& tail_name,
      std::vector<text::Sentence> sentences) const;

  /// Zero-downtime hot swap: loads `snapshot_path` (on the calling thread,
  /// never a request thread), validates it against the serving generation
  /// (ModelState::ValidateSwap), and publishes it atomically. In-flight
  /// requests finish on the old generation; new requests see the new one.
  [[nodiscard]] util::Status Reload(const std::string& snapshot_path);

  /// Publishes an already prepared state (ServeRouter shares one state
  /// across its replicas). The caller is responsible for validation.
  void SwapState(std::shared_ptr<const ModelState> state);

  /// The state serving new requests right now. Holding the returned
  /// pointer keeps that generation alive across swaps.
  [[nodiscard]] std::shared_ptr<const ModelState> CurrentState() const {
    return state_.load(std::memory_order_acquire);
  }

  uint64_t generation() const { return CurrentState()->generation; }

  EngineStats Stats() const IMR_EXCLUDES(stats_mutex_);

  /// Raw latency ring contents (unordered); ServeRouter merges these
  /// across replicas for aggregate percentiles.
  std::vector<double> LatencySamples() const IMR_EXCLUDES(stats_mutex_);

  /// The serving snapshot. The reference stays valid until the next
  /// swap — callers that might race a Reload must hold CurrentState()
  /// instead.
  const Snapshot& snapshot() const { return CurrentState()->snapshot; }
  int num_relations() const {
    return CurrentState()
        ->snapshot.manifest.model_config.num_relations;
  }

 private:
  struct PendingRequest {
    Query query;
    std::promise<util::StatusOr<Prediction>> promise;
  };

  /// Cache keys embed the generation so a hot swap can never serve one
  /// generation's MR vector with another's model weights.
  struct MrCacheKey {
    uint64_t generation = 0;
    uint64_t pair = 0;
    bool operator==(const MrCacheKey&) const = default;
  };
  struct MrCacheKeyHash {
    size_t operator()(const MrCacheKey& key) const {
      uint64_t h = key.pair + 0x9e3779b97f4a7c15ULL * (key.generation + 1);
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<size_t>(h);
    }
  };

  util::StatusOr<re::Bag> BuildBag(const ModelState& state,
                                   const Query& query, bool* cache_hit);
  util::StatusOr<Prediction> PredictOne(const Query& query)
      IMR_EXCLUDES(stats_mutex_);
  util::ThreadPool& pool();
  void EnsureDispatcherLocked() IMR_REQUIRES(queue_mutex_);
  void DispatchLoop() IMR_EXCLUDES(queue_mutex_, stats_mutex_);

  EngineOptions options_;
  std::unique_ptr<util::ThreadPool> own_pool_;  // only when options_.threads > 0
  /// The RCU slot. libstdc++'s std::atomic<shared_ptr> serializes the
  /// pointer swap internally; request threads pay one acquire load.
  std::atomic<std::shared_ptr<const ModelState>> state_;

  ShardedLruCache<MrCacheKey, std::vector<float>, MrCacheKeyHash> mr_cache_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> knn_fired_{0};
  mutable util::Mutex stats_mutex_;  // latency ring + qps window only
  double latency_sum_us_ IMR_GUARDED_BY(stats_mutex_) = 0.0;
  double latency_max_us_ IMR_GUARDED_BY(stats_mutex_) = 0.0;
  std::vector<double> latency_ring_ IMR_GUARDED_BY(stats_mutex_);
  size_t latency_next_ IMR_GUARDED_BY(stats_mutex_) = 0;
  bool first_request_seen_ IMR_GUARDED_BY(stats_mutex_) = false;
  std::chrono::steady_clock::time_point first_request_time_
      IMR_GUARDED_BY(stats_mutex_);
  std::chrono::steady_clock::time_point last_completion_time_
      IMR_GUARDED_BY(stats_mutex_);

  util::Mutex queue_mutex_;
  util::CondVar queue_cv_;
  std::vector<PendingRequest> queue_ IMR_GUARDED_BY(queue_mutex_);
  bool stop_ IMR_GUARDED_BY(queue_mutex_) = false;
  bool dispatcher_started_ IMR_GUARDED_BY(queue_mutex_) = false;
  // Written once under queue_mutex_ (EnsureDispatcherLocked) and joined in
  // the destructor after the dispatcher was told to stop; not annotated
  // because std::thread::join must run unlocked.
  std::thread dispatcher_;
};

}  // namespace imr::serve

#endif  // IMR_SERVE_INFERENCE_ENGINE_H_
