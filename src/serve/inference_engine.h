// Batched inference serving over a loaded model snapshot — the paper's
// pipeline with all training machinery stripped away. The engine owns the
// snapshot (model in eval mode, dropout off, no Rng anywhere on the hot
// path), featurizes queries exactly as BagDataset did at training time, and
// offers three calling conventions:
//
//   Predict(query)        synchronous, single request
//   PredictBatch(queries) one parallel pass over util::ThreadPool
//   SubmitAsync(query)    enqueue; a dispatcher thread coalesces queued
//                         requests into micro-batches (flushed at
//                         max_batch or after batch_delay_us) and executes
//                         them as one PredictBatch
//
// Mutual-relation vectors are served through a per-pair LRU cache: the
// Zipf-skewed pair popularity the paper measures (Fig. 1(a)) makes a small
// cache absorb most traffic. Cached and uncached paths are bit-identical
// (the MR vector is a pure function of the embedding rows), and prediction
// itself is deterministic at any thread count — each query is scored
// independently.
#ifndef IMR_SERVE_INFERENCE_ENGINE_H_
#define IMR_SERVE_INFERENCE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/lru_cache.h"
#include "serve/snapshot.h"
#include "text/sentence.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace imr::serve {

struct EngineOptions {
  /// Micro-batch flush size for SubmitAsync; PredictBatch is unaffected.
  int max_batch = 32;
  /// How long the dispatcher waits for more requests before flushing a
  /// partial micro-batch. 0 flushes immediately (no coalescing).
  int batch_delay_us = 200;
  /// Worker threads for batch execution. 0 uses the process-global pool
  /// (util::GlobalThreads); > 0 gives the engine a private pool.
  int threads = 0;
  /// Entity-pair mutual-relation cache capacity; 0 disables caching.
  size_t mr_cache_capacity = 4096;
  /// Ring-buffer size for latency percentile estimates.
  size_t latency_samples = 4096;
  /// Relations returned in Prediction::top.
  int top_k = 3;
  /// Serve with the int8 path: mutual-relation vectors come from the
  /// snapshot's QEMB section (quantized at load when the file has none)
  /// and the model's fusion heads run through the int8 GEMM
  /// (PaModel::EnableQuantizedInference). fp32 and quantized engines over
  /// the same snapshot are compared by bench_serve's accuracy gate.
  bool quantized = false;
};

/// One inference request: an entity pair plus the sentences mentioning it
/// (the bag). Types may be left empty when the snapshot carries an entity
/// table — they are then filled from it.
struct Query {
  int64_t head = -1;
  int64_t tail = -1;
  std::vector<int> head_types;
  std::vector<int> tail_types;
  std::vector<text::Sentence> sentences;
};

struct ScoredRelation {
  int relation = 0;
  std::string name;
  float probability = 0.0f;
};

struct Prediction {
  std::vector<float> probabilities;  // all relations, index == relation id
  std::vector<ScoredRelation> top;   // top_k by probability, descending
  double latency_us = 0.0;           // model forward time for this request
  bool mr_cache_hit = false;
};

struct EngineStats {
  uint64_t requests = 0;
  uint64_t batches = 0;  // micro-batches executed by the dispatcher
  uint64_t mr_cache_hits = 0;
  uint64_t mr_cache_misses = 0;
  double mean_latency_us = 0.0;
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// Completed requests divided by the wall time between the first request
  /// and the most recent completion.
  double qps = 0.0;
  /// Tensor buffer-pool traffic, process-wide (tensor::PoolStats()). A
  /// warmed-up engine serves cache-hit predictions with zero new pool
  /// misses, so a rising miss count flags an allocation regression.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  /// Row-sparse gradient traffic, process-wide (tensor::SparseGradStats()).
  /// Inference itself takes no gradients, so for a pure serving process
  /// these stay 0; a co-located trainer (train-demo, online fine-tuning)
  /// surfaces its embedding-row touch rate and any dense fallbacks here.
  uint64_t sparse_rows_touched = 0;
  uint64_t sparse_rows_total = 0;
  uint64_t sparse_dense_fallbacks = 0;
};

class InferenceEngine {
 public:
  InferenceEngine(Snapshot snapshot, const EngineOptions& options);
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Loads a snapshot from disk and wraps it in an engine.
  [[nodiscard]] static util::StatusOr<std::unique_ptr<InferenceEngine>> Open(
      const std::string& snapshot_path, const EngineOptions& options = {});

  /// Scores one query synchronously.
  [[nodiscard]] util::StatusOr<Prediction> Predict(const Query& query);

  /// Scores a batch of queries, parallelized over the thread pool. Results
  /// align with the input order and are bit-identical at any thread count.
  std::vector<util::StatusOr<Prediction>> PredictBatch(
      const std::vector<Query>& queries);

  /// Enqueues a query for micro-batched execution; the future resolves
  /// once the dispatcher has run its batch.
  std::future<util::StatusOr<Prediction>> SubmitAsync(Query query);

  /// Resolves entity names against the snapshot's entity table and builds
  /// a query. Sentences with head_index/tail_index < 0 get their mention
  /// indices located by token match against the entity names.
  [[nodiscard]] util::StatusOr<Query> MakeQuery(
      const std::string& head_name, const std::string& tail_name,
      std::vector<text::Sentence> sentences) const;

  EngineStats Stats() const IMR_EXCLUDES(stats_mutex_);
  const Snapshot& snapshot() const { return snapshot_; }
  int num_relations() const {
    return snapshot_.manifest.model_config.num_relations;
  }

 private:
  struct PendingRequest {
    Query query;
    std::promise<util::StatusOr<Prediction>> promise;
  };

  util::StatusOr<re::Bag> BuildBag(const Query& query, bool* cache_hit)
      IMR_EXCLUDES(cache_mutex_, stats_mutex_);
  util::StatusOr<Prediction> PredictOne(const Query& query)
      IMR_EXCLUDES(cache_mutex_, stats_mutex_);
  util::ThreadPool& pool();
  void EnsureDispatcherLocked() IMR_REQUIRES(queue_mutex_);
  void DispatchLoop() IMR_EXCLUDES(queue_mutex_, stats_mutex_);

  Snapshot snapshot_;
  EngineOptions options_;
  std::unique_ptr<util::ThreadPool> own_pool_;  // only when options_.threads > 0
  std::unordered_map<std::string, int64_t> entity_by_name_;

  mutable util::Mutex cache_mutex_;
  LruCache<uint64_t, std::vector<float>> mr_cache_ IMR_GUARDED_BY(cache_mutex_);

  mutable util::Mutex stats_mutex_;
  uint64_t requests_ IMR_GUARDED_BY(stats_mutex_) = 0;
  uint64_t batches_ IMR_GUARDED_BY(stats_mutex_) = 0;
  uint64_t cache_hits_ IMR_GUARDED_BY(stats_mutex_) = 0;
  uint64_t cache_misses_ IMR_GUARDED_BY(stats_mutex_) = 0;
  double latency_sum_us_ IMR_GUARDED_BY(stats_mutex_) = 0.0;
  double latency_max_us_ IMR_GUARDED_BY(stats_mutex_) = 0.0;
  std::vector<double> latency_ring_ IMR_GUARDED_BY(stats_mutex_);
  size_t latency_next_ IMR_GUARDED_BY(stats_mutex_) = 0;
  bool first_request_seen_ IMR_GUARDED_BY(stats_mutex_) = false;
  std::chrono::steady_clock::time_point first_request_time_
      IMR_GUARDED_BY(stats_mutex_);
  std::chrono::steady_clock::time_point last_completion_time_
      IMR_GUARDED_BY(stats_mutex_);

  util::Mutex queue_mutex_;
  util::CondVar queue_cv_;
  std::vector<PendingRequest> queue_ IMR_GUARDED_BY(queue_mutex_);
  bool stop_ IMR_GUARDED_BY(queue_mutex_) = false;
  bool dispatcher_started_ IMR_GUARDED_BY(queue_mutex_) = false;
  // Written once under queue_mutex_ (EnsureDispatcherLocked) and joined in
  // the destructor after the dispatcher was told to stop; not annotated
  // because std::thread::join must run unlocked.
  std::thread dispatcher_;
};

}  // namespace imr::serve

#endif  // IMR_SERVE_INFERENCE_ENGINE_H_
