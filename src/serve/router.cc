#include "serve/router.h"

#include <algorithm>
#include <utility>

#include "serve/delta.h"
#include "util/logging.h"

namespace imr::serve {

namespace {

/// Percentile of a sorted sample set (nearest-rank); matches the engine's
/// per-replica estimator so aggregate and replica numbers are comparable.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank =
      static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

ServeRouter::ServeRouter(std::shared_ptr<const ModelState> state,
                         const RouterOptions& options)
    : options_(options),
      admission_(std::max(1, options.replicas), options.admission) {
  IMR_CHECK(state != nullptr);
  options_.replicas = std::max(1, options_.replicas);
  options_.workers_per_replica = std::max(1, options_.workers_per_replica);
  generation_.store(state->generation, std::memory_order_release);
  const size_t replicas = static_cast<size_t>(options_.replicas);
  engines_.reserve(replicas);
  queues_.reserve(replicas);
  for (size_t r = 0; r < replicas; ++r) {
    engines_.push_back(
        std::make_unique<InferenceEngine>(state, options_.engine));
    queues_.push_back(std::make_unique<ReplicaQueue>());
  }
  workers_.reserve(replicas *
                   static_cast<size_t>(options_.workers_per_replica));
  for (int r = 0; r < options_.replicas; ++r) {
    for (int w = 0; w < options_.workers_per_replica; ++w) {
      workers_.emplace_back([this, r] { WorkerLoop(r); });
    }
  }
}

ServeRouter::~ServeRouter() {
  for (auto& queue : queues_) {
    {
      util::MutexLock lock(queue->mutex);
      queue->stop = true;
    }
    queue->cv.NotifyAll();
  }
  for (std::thread& worker : workers_) worker.join();
}

util::StatusOr<std::unique_ptr<ServeRouter>> ServeRouter::Open(
    const std::string& snapshot_path, const RouterOptions& options) {
  auto snapshot = LoadSnapshot(snapshot_path);
  IMR_RETURN_IF_ERROR(snapshot.status());
  auto state = ModelState::Create(std::move(*snapshot),
                                  options.engine.quantized, /*generation=*/1);
  IMR_RETURN_IF_ERROR(state.status());
  return std::make_unique<ServeRouter>(std::move(*state), options);
}

std::future<util::StatusOr<Prediction>> ServeRouter::Enqueue(Query query) {
  auto admitted = admission_.Admit();
  if (!admitted.ok()) {
    // Rejected at the door: resolve immediately, never touch a queue.
    std::promise<util::StatusOr<Prediction>> rejected;
    std::future<util::StatusOr<Prediction>> future = rejected.get_future();
    rejected.set_value(admitted.status());
    return future;
  }
  ReplicaQueue& queue = *queues_[static_cast<size_t>(*admitted)];
  std::future<util::StatusOr<Prediction>> future;
  {
    util::MutexLock lock(queue.mutex);
    IMR_CHECK(!queue.stop);
    queue.pending.push_back(PendingRequest{
        std::move(query), {}, std::chrono::steady_clock::now()});
    future = queue.pending.back().promise.get_future();
  }
  queue.cv.NotifyOne();
  return future;
}

util::StatusOr<Prediction> ServeRouter::Predict(const Query& query) {
  return Enqueue(query).get();
}

std::vector<util::StatusOr<Prediction>> ServeRouter::PredictBatch(
    const std::vector<Query>& queries) {
  std::vector<std::future<util::StatusOr<Prediction>>> futures;
  futures.reserve(queries.size());
  for (const Query& query : queries) futures.push_back(Enqueue(query));
  std::vector<util::StatusOr<Prediction>> results;
  results.reserve(queries.size());
  for (auto& future : futures) results.push_back(future.get());
  return results;
}

std::future<util::StatusOr<Prediction>> ServeRouter::SubmitAsync(Query query) {
  return Enqueue(std::move(query));
}

util::StatusOr<Query> ServeRouter::MakeQuery(
    const std::string& head_name, const std::string& tail_name,
    std::vector<text::Sentence> sentences) const {
  return engines_.front()->MakeQuery(head_name, tail_name,
                                     std::move(sentences));
}

void ServeRouter::WorkerLoop(int replica_index) {
  ReplicaQueue& queue = *queues_[static_cast<size_t>(replica_index)];
  InferenceEngine& engine = *engines_[static_cast<size_t>(replica_index)];
  while (true) {
    PendingRequest request;
    {
      util::MutexLock lock(queue.mutex);
      while (!queue.stop && queue.pending.empty()) queue.cv.Wait(queue.mutex);
      if (queue.pending.empty()) return;  // stop requested and fully drained
      request = std::move(queue.pending.front());
      queue.pending.pop_front();
    }
    admission_.OnDequeue(replica_index);
    if (admission_.ExpiredInQueue(request.enqueue_time)) {
      const double waited_us =
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - request.enqueue_time)
              .count();
      request.promise.set_value(admission_.Shed(replica_index, waited_us));
      continue;
    }
    // The slot bounds concurrent forwards across ALL replicas: queue wait
    // happens here (outside the forward) instead of inside it as
    // scheduler time-slicing.
    admission_.AcquireSlot();
    util::StatusOr<Prediction> result = engine.Predict(request.query);
    admission_.ReleaseSlot();
    if (result.ok()) admission_.OnComplete(result->latency_us);
    request.promise.set_value(std::move(result));
  }
}

util::Status ServeRouter::Reload(const std::string& snapshot_path) {
  util::MutexLock lock(reload_mutex_);
  // Load + prepare once on this thread; request traffic keeps flowing on
  // the current generation the whole time.
  auto snapshot = LoadSnapshot(snapshot_path);
  if (!snapshot.ok()) {
    last_reload_error_ = snapshot.status().message();
    return snapshot.status();
  }
  const uint64_t next_generation =
      generation_.load(std::memory_order_acquire) + 1;
  return PublishLocked(
      ModelState::Create(std::move(*snapshot), options_.engine.quantized,
                         next_generation),
      /*is_delta=*/false);
}

util::Status ServeRouter::ReloadDelta(const std::string& delta_path) {
  util::MutexLock lock(reload_mutex_);
  // Pin the base generation for the whole apply: even if a concurrent full
  // Reload were possible (it is not — reload_mutex_), the delta patches
  // exactly the state it hash-matched against.
  const std::shared_ptr<const ModelState> base =
      engines_.front()->CurrentState();
  auto snapshot = ApplyDelta(base->snapshot, delta_path);
  if (!snapshot.ok()) {
    last_reload_error_ = snapshot.status().message();
    return snapshot.status();
  }
  const uint64_t next_generation =
      generation_.load(std::memory_order_acquire) + 1;
  return PublishLocked(
      ModelState::Create(std::move(*snapshot), options_.engine.quantized,
                         next_generation, base.get()),
      /*is_delta=*/true);
}

util::Status ServeRouter::PublishLocked(
    util::StatusOr<std::shared_ptr<const ModelState>> next, bool is_delta) {
  if (!next.ok()) {
    last_reload_error_ = next.status().message();
    return next.status();
  }
  const std::shared_ptr<const ModelState> current =
      engines_.front()->CurrentState();
  if (util::Status valid = ModelState::ValidateSwap(*current, **next);
      !valid.ok()) {
    last_reload_error_ = valid.message();
    return valid;
  }
  // Publish: one atomic store per replica. In-flight requests drain on the
  // generation they pinned; the old state frees when the last one returns —
  // which is also what keeps a delta's base mapping pinned until its last
  // borrower exits.
  for (auto& engine : engines_) engine->SwapState(*next);
  generation_.store((*next)->generation, std::memory_order_release);
  reloads_.fetch_add(1, std::memory_order_relaxed);
  if (is_delta) delta_reloads_.fetch_add(1, std::memory_order_relaxed);
  last_reload_error_.clear();
  return util::OkStatus();
}

RouterStats ServeRouter::Stats() const {
  RouterStats stats;
  stats.generation = generation_.load(std::memory_order_acquire);
  stats.reloads = reloads_.load(std::memory_order_relaxed);
  stats.delta_reloads = delta_reloads_.load(std::memory_order_relaxed);
  stats.content_hash = content_hash();
  {
    util::MutexLock lock(reload_mutex_);
    stats.last_reload_error = last_reload_error_;
  }
  stats.replicas.reserve(engines_.size());
  EngineStats& total = stats.aggregate;
  std::vector<double> merged_samples;
  double latency_weighted_sum = 0.0;
  for (size_t r = 0; r < engines_.size(); ++r) {
    EngineStats replica = engines_[r]->Stats();
    const AdmissionCounters admission =
        admission_.Counters(static_cast<int>(r));
    replica.queue_depth = admission.queue_depth;
    replica.queue_peak = admission.queue_peak;
    replica.admitted = admission.admitted;
    replica.rejected_queue_full = admission.rejected_queue_full;
    replica.shed_deadline = admission.shed_deadline;

    total.requests += replica.requests;
    total.batches += replica.batches;
    total.knn_fired += replica.knn_fired;
    total.mr_cache_hits += replica.mr_cache_hits;
    total.mr_cache_misses += replica.mr_cache_misses;
    if (total.cache_shards.size() < replica.cache_shards.size()) {
      total.cache_shards.resize(replica.cache_shards.size());
    }
    for (size_t s = 0; s < replica.cache_shards.size(); ++s) {
      total.cache_shards[s].hits += replica.cache_shards[s].hits;
      total.cache_shards[s].misses += replica.cache_shards[s].misses;
      total.cache_shards[s].size += replica.cache_shards[s].size;
    }
    latency_weighted_sum +=
        replica.mean_latency_us * static_cast<double>(replica.requests);
    total.max_latency_us =
        std::max(total.max_latency_us, replica.max_latency_us);
    // Replica windows overlap under concurrent load, so summing per-replica
    // qps approximates the router's throughput.
    total.qps += replica.qps;

    const std::vector<double> samples = engines_[r]->LatencySamples();
    merged_samples.insert(merged_samples.end(), samples.begin(),
                          samples.end());
    stats.replicas.push_back(std::move(replica));
  }
  if (total.requests > 0) {
    total.mean_latency_us =
        latency_weighted_sum / static_cast<double>(total.requests);
  }
  std::sort(merged_samples.begin(), merged_samples.end());
  total.p50_latency_us = Percentile(merged_samples, 0.50);
  total.p99_latency_us = Percentile(merged_samples, 0.99);
  total.p999_latency_us = Percentile(merged_samples, 0.999);
  total.generation = stats.generation;
  const AdmissionCounters admission = admission_.TotalCounters();
  total.queue_depth = admission.queue_depth;
  total.queue_peak = admission.queue_peak;
  total.admitted = admission.admitted;
  total.rejected_queue_full = admission.rejected_queue_full;
  total.shed_deadline = admission.shed_deadline;
  if (!stats.replicas.empty()) {
    // Process-wide counters: copy once, never sum.
    total.pool_hits = stats.replicas.front().pool_hits;
    total.pool_misses = stats.replicas.front().pool_misses;
    total.sparse_rows_touched = stats.replicas.front().sparse_rows_touched;
    total.sparse_rows_total = stats.replicas.front().sparse_rows_total;
    total.sparse_dense_fallbacks =
        stats.replicas.front().sparse_dense_fallbacks;
  }
  return stats;
}

}  // namespace imr::serve
