#include "serve/snapshot_watcher.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "serve/delta.h"
#include "util/logging.h"

namespace imr::serve {

SnapshotWatcher::SnapshotWatcher(std::string path, ReloadFn reload,
                                 const WatcherOptions& options)
    : path_(std::move(path)), reload_(std::move(reload)), options_(options) {
  IMR_CHECK(reload_ != nullptr);
  util::MutexLock lock(mutex_);
  // The file as it exists now is the generation already being served;
  // only changes from here trigger reloads.
  loaded_ = Stat(path_);
}

SnapshotWatcher::~SnapshotWatcher() { Stop(); }

SnapshotWatcher::Signature SnapshotWatcher::Stat(const std::string& path) {
  Signature signature;
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return signature;  // absent: size -1
  signature.size = static_cast<int64_t>(st.st_size);
  signature.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                       static_cast<int64_t>(st.st_mtim.tv_nsec);
  return signature;
}

void SnapshotWatcher::Start() {
  util::MutexLock lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { PollLoop(); });
}

void SnapshotWatcher::Stop() {
  {
    util::MutexLock lock(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  stop_cv_.NotifyAll();
  thread_.join();
  util::MutexLock lock(mutex_);
  running_ = false;
}

void SnapshotWatcher::PollLoop() {
  while (true) {
    {
      util::MutexLock lock(mutex_);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(std::max(1, options_.poll_interval_ms));
      while (!stop_) {
        if (!stop_cv_.WaitUntil(mutex_, deadline)) break;  // poll time
      }
      if (stop_) return;
    }
    PollStep();
  }
}

bool SnapshotWatcher::CheckNow() { return PollStep(); }

void SnapshotWatcher::WatchDeltas(DeltaHooks hooks) {
  IMR_CHECK(hooks.serving_hash != nullptr);
  IMR_CHECK(hooks.apply != nullptr);
  util::MutexLock lock(mutex_);
  delta_hooks_ = std::move(hooks);
  // Deltas already sitting in the directory ARE applied (unlike the main
  // snapshot, whose on-disk generation is the one already serving): a
  // restart must catch up on the chain its base snapshot has accumulated.
}

bool SnapshotWatcher::PollStep() {
  bool acted = SnapshotPollStep();
  if (delta_hooks_.apply != nullptr) acted = DeltaPollStep() || acted;
  return acted;
}

bool SnapshotWatcher::SnapshotPollStep() {
  const Signature now = Stat(path_);
  {
    util::MutexLock lock(mutex_);
    ++stats_.polls;
    if (now.size < 0 || now == loaded_) {
      has_candidate_ = false;  // nothing new (or file vanished): re-arm
      return false;
    }
    if (!has_candidate_ || !(candidate_ == now)) {
      // First sighting of this signature — require one more poll with the
      // identical mtime+size before trusting it (writer may be mid-flush).
      candidate_ = now;
      has_candidate_ = true;
      return false;
    }
    ++stats_.reloads_attempted;
    has_candidate_ = false;
  }
  // The reload (file read + validation + swap) runs unlocked.
  const util::Status status = reload_(path_);
  util::MutexLock lock(mutex_);
  // Either way this signature is consumed: a corrupt file is not retried
  // every poll (that would re-read it forever) — replacing it changes the
  // signature and re-triggers.
  loaded_ = now;
  if (status.ok()) {
    ++stats_.reloads_succeeded;
    last_error_.clear();
  } else {
    ++stats_.reloads_failed;
    last_error_ = status.message();
  }
  return true;
}

std::vector<std::string> SnapshotWatcher::ListDeltaFiles() const {
  const size_t slash = path_.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path_.substr(0, slash);
  std::vector<std::string> files;
  ::DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return files;
  while (struct ::dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    constexpr const char kSuffix[] = ".imrd";
    constexpr size_t kSuffixLen = sizeof kSuffix - 1;
    if (name.size() <= kSuffixLen ||
        name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
      continue;
    }
    files.push_back(dir + "/" + name);
  }
  ::closedir(handle);
  std::sort(files.begin(), files.end());
  return files;
}

bool SnapshotWatcher::DeltaPollStep() {
  const std::vector<std::string> files = ListDeltaFiles();
  // Debounce pass: collect files whose signature held for two polls and
  // whose current signature has not already been acted on.
  std::vector<std::string> settled;
  {
    util::MutexLock lock(mutex_);
    // Forget bookkeeping for files that vanished.
    for (auto it = deltas_.begin(); it != deltas_.end();) {
      if (std::find(files.begin(), files.end(), it->first) == files.end()) {
        it = deltas_.erase(it);
      } else {
        ++it;
      }
    }
    for (const std::string& file : files) {
      const Signature now = Stat(file);
      if (now.size < 0) continue;
      DeltaState& state = deltas_[file];
      if (state.has_consumed && state.consumed == now) continue;
      if (!state.has_candidate || !(state.candidate == now)) {
        state.candidate = now;  // first sighting: wait one more poll
        state.has_candidate = true;
        continue;
      }
      settled.push_back(file);
    }
  }
  if (settled.empty()) return false;

  // Apply pass: each round applies every delta whose base hash matches the
  // CURRENT serving hash; a success advances the hash, so a chain of
  // deltas (base -> d1 -> d2) rolls out fully in one poll. Bounded by one
  // apply per settled file.
  bool acted = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (const std::string& file : settled) {
      {
        util::MutexLock lock(mutex_);
        const DeltaState& state = deltas_[file];
        if (state.has_consumed && state.consumed == state.candidate) {
          continue;  // acted on in an earlier round
        }
      }
      auto header = ReadDeltaHeader(file);
      if (!header.ok()) {
        // Corrupt framing: consume this signature (rewriting re-arms it).
        util::MutexLock lock(mutex_);
        DeltaState& state = deltas_[file];
        state.consumed = state.candidate;
        state.has_consumed = true;
        ++stats_.delta_applies_attempted;
        ++stats_.delta_applies_failed;
        last_error_ = header.status().message();
        acted = true;
        continue;
      }
      if (header->base_hash != delta_hooks_.serving_hash()) {
        continue;  // not this generation's delta (yet) — cheap re-probe later
      }
      {
        util::MutexLock lock(mutex_);
        ++stats_.delta_applies_attempted;
      }
      const util::Status status = delta_hooks_.apply(file);
      util::MutexLock lock(mutex_);
      DeltaState& state = deltas_[file];
      // Success or failure, this signature is consumed — a bad delta is
      // not re-applied every poll (no retry storm).
      state.consumed = state.candidate;
      state.has_consumed = true;
      if (status.ok()) {
        ++stats_.delta_applies_succeeded;
        last_error_.clear();
        progress = true;  // serving hash advanced: rescan for chained deltas
      } else {
        ++stats_.delta_applies_failed;
        last_error_ = status.message();
      }
      acted = true;
    }
  }
  return acted;
}

WatcherStats SnapshotWatcher::Stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

std::string SnapshotWatcher::last_error() const {
  util::MutexLock lock(mutex_);
  return last_error_;
}

}  // namespace imr::serve
