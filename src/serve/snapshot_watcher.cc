#include "serve/snapshot_watcher.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/logging.h"

namespace imr::serve {

SnapshotWatcher::SnapshotWatcher(std::string path, ReloadFn reload,
                                 const WatcherOptions& options)
    : path_(std::move(path)), reload_(std::move(reload)), options_(options) {
  IMR_CHECK(reload_ != nullptr);
  util::MutexLock lock(mutex_);
  // The file as it exists now is the generation already being served;
  // only changes from here trigger reloads.
  loaded_ = Stat(path_);
}

SnapshotWatcher::~SnapshotWatcher() { Stop(); }

SnapshotWatcher::Signature SnapshotWatcher::Stat(const std::string& path) {
  Signature signature;
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) return signature;  // absent: size -1
  signature.size = static_cast<int64_t>(st.st_size);
  signature.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                       static_cast<int64_t>(st.st_mtim.tv_nsec);
  return signature;
}

void SnapshotWatcher::Start() {
  util::MutexLock lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] { PollLoop(); });
}

void SnapshotWatcher::Stop() {
  {
    util::MutexLock lock(mutex_);
    if (!running_) return;
    stop_ = true;
  }
  stop_cv_.NotifyAll();
  thread_.join();
  util::MutexLock lock(mutex_);
  running_ = false;
}

void SnapshotWatcher::PollLoop() {
  while (true) {
    {
      util::MutexLock lock(mutex_);
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(std::max(1, options_.poll_interval_ms));
      while (!stop_) {
        if (!stop_cv_.WaitUntil(mutex_, deadline)) break;  // poll time
      }
      if (stop_) return;
    }
    PollStep();
  }
}

bool SnapshotWatcher::CheckNow() { return PollStep(); }

bool SnapshotWatcher::PollStep() {
  const Signature now = Stat(path_);
  {
    util::MutexLock lock(mutex_);
    ++stats_.polls;
    if (now.size < 0 || now == loaded_) {
      has_candidate_ = false;  // nothing new (or file vanished): re-arm
      return false;
    }
    if (!has_candidate_ || !(candidate_ == now)) {
      // First sighting of this signature — require one more poll with the
      // identical mtime+size before trusting it (writer may be mid-flush).
      candidate_ = now;
      has_candidate_ = true;
      return false;
    }
    ++stats_.reloads_attempted;
    has_candidate_ = false;
  }
  // The reload (file read + validation + swap) runs unlocked.
  const util::Status status = reload_(path_);
  util::MutexLock lock(mutex_);
  // Either way this signature is consumed: a corrupt file is not retried
  // every poll (that would re-read it forever) — replacing it changes the
  // signature and re-triggers.
  loaded_ = now;
  if (status.ok()) {
    ++stats_.reloads_succeeded;
    last_error_.clear();
  } else {
    ++stats_.reloads_failed;
    last_error_ = status.message();
  }
  return true;
}

WatcherStats SnapshotWatcher::Stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

std::string SnapshotWatcher::last_error() const {
  util::MutexLock lock(mutex_);
  return last_error_;
}

}  // namespace imr::serve
