// The serve tier's front door: a ServeRouter fronts N InferenceEngine
// replicas that share one immutable ModelState (replicas exist for lock
// and queue isolation — separate latency rings, separate async queues —
// not for copies of the weights).
//
// Topology (DESIGN.md §12):
//
//   client ──> AdmissionController ──> per-replica bounded queue ──┐
//                (least-depth pick,         (Mutex + CondVar)      │
//                 kUnavailable +                                   ▼
//                 retry-after when full)                    worker threads
//                                                                  │
//                                              execution slots ◄───┤
//                                              (global semaphore,  ▼
//                                               max_concurrent)  engine
//                                                             .Predict()
//
// Every admitted request flows through exactly one replica's queue; its
// worker sheds it if the queue wait exceeded deadline_us, otherwise takes
// an execution slot and runs the forward. Slots bound concurrent forwards
// to roughly the core count, so under overload requests wait in queues
// (cheap, visible, sheddable) instead of time-slicing each other's
// forwards apart — that time-slicing is what made the pre-router engine's
// threads=4 p99 ~50x its single-thread p99.
//
// Hot swap: Reload() loads and validates the new snapshot ONCE on the
// calling thread, then publishes the resulting ModelState to every replica
// with one atomic store each (InferenceEngine::SwapState). In-flight
// requests drain on the generation they pinned at dispatch; zero requests
// fail or block during a swap. SnapshotWatcher (snapshot_watcher.h) can
// drive Reload() from file-change polling for hands-off rollouts.
#ifndef IMR_SERVE_ROUTER_H_
#define IMR_SERVE_ROUTER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/admission.h"
#include "serve/inference_engine.h"
#include "serve/model_state.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace imr::serve {

struct RouterOptions {
  /// Engine replicas. Each gets its own MR cache, async queue, and stats;
  /// all share one ModelState.
  int replicas = 1;
  /// Worker threads draining each replica's queue.
  int workers_per_replica = 1;
  /// Queue bounds, deadline shedding, and the execution-slot cap.
  AdmissionOptions admission;
  /// Per-replica engine configuration (cache size/shards, top_k,
  /// quantized serving, ...). EngineOptions::threads applies to each
  /// replica's internal PredictBatch pool, not to the router's workers.
  EngineOptions engine;
};

struct RouterStats {
  /// Cross-replica aggregate: request counts and cache traffic summed,
  /// percentiles recomputed over the merged latency rings, qps summed
  /// across concurrently active replicas, admission totals from the
  /// controller. Pool/sparse counters are process-wide and copied once.
  EngineStats aggregate;
  /// Per-replica engine stats, each with its own admission counters.
  std::vector<EngineStats> replicas;
  uint64_t generation = 0;
  uint64_t reloads = 0;
  /// How many of `reloads` were IMRD delta applies (ReloadDelta) rather
  /// than full snapshot loads.
  uint64_t delta_reloads = 0;
  /// Content hash of the serving generation (v2 snapshots and delta
  /// results; 0 for v1). The identity the next delta must chain on.
  uint64_t content_hash = 0;
  /// Empty when the last Reload()/ReloadDelta() succeeded (or none was
  /// attempted).
  std::string last_reload_error;
};

class ServeRouter {
 public:
  ServeRouter(std::shared_ptr<const ModelState> state,
              const RouterOptions& options);
  ~ServeRouter();

  ServeRouter(const ServeRouter&) = delete;
  ServeRouter& operator=(const ServeRouter&) = delete;

  /// Loads a snapshot from disk and builds the replica set over it.
  [[nodiscard]] static util::StatusOr<std::unique_ptr<ServeRouter>> Open(
      const std::string& snapshot_path, const RouterOptions& options = {});

  /// Synchronous predict: admission (possibly kUnavailable), then the
  /// request rides its replica's queue like any other and the call blocks
  /// on the result. Subject to deadline shedding.
  [[nodiscard]] util::StatusOr<Prediction> Predict(const Query& query);

  /// Admits and enqueues every query, then waits for all results. Results
  /// align with input order; individual entries may be kUnavailable
  /// (rejected at the door or shed in queue).
  std::vector<util::StatusOr<Prediction>> PredictBatch(
      const std::vector<Query>& queries);

  /// Fire-and-wait-later: the future resolves with the prediction, a
  /// kUnavailable rejection, or a deadline shed.
  std::future<util::StatusOr<Prediction>> SubmitAsync(Query query);

  /// Entity-name resolution against the serving snapshot (see
  /// InferenceEngine::MakeQuery).
  [[nodiscard]] util::StatusOr<Query> MakeQuery(
      const std::string& head_name, const std::string& tail_name,
      std::vector<text::Sentence> sentences) const;

  /// Zero-downtime hot swap across all replicas: load + validate once,
  /// then one atomic publish per replica. Serialized against concurrent
  /// Reload() calls; request traffic never blocks on it.
  [[nodiscard]] util::Status Reload(const std::string& snapshot_path)
      IMR_EXCLUDES(reload_mutex_);

  /// O(touched-rows) hot swap: applies the IMRD delta at `delta_path` to
  /// the serving generation (copy-on-write block aliasing of its mapping,
  /// see delta.h) and publishes the result exactly like Reload(). Fails
  /// with a clean Status — and leaves the serving generation untouched —
  /// when the delta's base hash does not match the serving content hash.
  [[nodiscard]] util::Status ReloadDelta(const std::string& delta_path)
      IMR_EXCLUDES(reload_mutex_);

  /// Content hash of the serving generation (0 for v1 snapshots).
  uint64_t content_hash() const {
    return engines_.front()->CurrentState()->snapshot.content_hash;
  }

  [[nodiscard]] RouterStats Stats() const IMR_EXCLUDES(reload_mutex_);

  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }
  int replicas() const { return static_cast<int>(engines_.size()); }
  InferenceEngine& replica(int index) { return *engines_[static_cast<size_t>(index)]; }
  const AdmissionController& admission() const { return admission_; }

 private:
  struct PendingRequest {
    Query query;
    std::promise<util::StatusOr<Prediction>> promise;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  struct ReplicaQueue {
    util::Mutex mutex;
    util::CondVar cv;
    std::deque<PendingRequest> pending IMR_GUARDED_BY(mutex);
    bool stop IMR_GUARDED_BY(mutex) = false;
  };

  /// Admits `query` and enqueues it on the chosen replica; on rejection
  /// the returned future is already resolved with kUnavailable.
  std::future<util::StatusOr<Prediction>> Enqueue(Query query);
  void WorkerLoop(int replica_index);

  RouterOptions options_;
  AdmissionController admission_;
  std::vector<std::unique_ptr<InferenceEngine>> engines_;
  std::vector<std::unique_ptr<ReplicaQueue>> queues_;
  std::vector<std::thread> workers_;
  /// Shared swap tail of Reload/ReloadDelta: validate against the serving
  /// generation, publish to every replica, bump the counters.
  [[nodiscard]] util::Status PublishLocked(
      util::StatusOr<std::shared_ptr<const ModelState>> next, bool is_delta)
      IMR_REQUIRES(reload_mutex_);

  std::atomic<uint64_t> generation_{1};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> delta_reloads_{0};

  /// Serializes Reload() callers (never contended by request traffic).
  mutable util::Mutex reload_mutex_;
  std::string last_reload_error_ IMR_GUARDED_BY(reload_mutex_);
};

}  // namespace imr::serve

#endif  // IMR_SERVE_ROUTER_H_
