// The unit of zero-downtime snapshot hot-swap: one fully prepared,
// immutable-after-publication serving state (loaded snapshot, eval-mode
// model, optional int8 quantization, entity-name index) tagged with a
// monotonically increasing generation number.
//
// The RCU-style protocol: request threads load a
// std::shared_ptr<const ModelState> once at the top of the request and use
// only that state for featurization, the mutual-relation vector, and the
// model forward — so every response is consistent with exactly one
// generation even while a swap is in flight. Publishing a new generation is
// one atomic shared_ptr store; the old generation stays alive (and keeps
// serving its in-flight requests) until the last request drops its
// reference, then frees on whatever thread held it last. No request ever
// blocks on a reload.
#ifndef IMR_SERVE_MODEL_STATE_H_
#define IMR_SERVE_MODEL_STATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "serve/snapshot.h"
#include "util/status.h"

namespace imr::serve {

struct ModelState {
  using EntityIndex = std::unordered_map<std::string, int64_t>;

  /// Generation numbers are assigned by whoever publishes the state (the
  /// engine numbers its boot snapshot 1 and increments per swap).
  uint64_t generation = 0;
  Snapshot snapshot;
  /// Entity name -> vertex id, built once so MakeQuery never scans. Never
  /// null. Shared: an IMRD delta generation whose snapshot reuses its
  /// base's tables also reuses the base's index instead of re-hashing
  /// O(entities) names — part of keeping delta publication O(touched rows).
  std::shared_ptr<const EntityIndex> entity_by_name =
      std::make_shared<EntityIndex>();

  /// Prepares a loaded snapshot for serving: forces eval mode, applies the
  /// int8 path when `quantized` (building the QEMB store on the fly for
  /// files that predate the section), and indexes the entity table. The
  /// returned state must not be mutated after publication. `base` (may be
  /// null) is the generation this snapshot was derived from; when its
  /// tables handle matches, derived lookup structures are shared instead of
  /// rebuilt.
  [[nodiscard]] static util::StatusOr<std::shared_ptr<const ModelState>>
  Create(Snapshot snapshot, bool quantized, uint64_t generation,
         const ModelState* base = nullptr);

  /// Swap-compatibility validation: a new generation may replace `current`
  /// only if it serves the same decision space (relation count and
  /// mutual-relation dimension). Anything else would silently change the
  /// meaning of in-flight client code, so the swap is refused instead.
  [[nodiscard]] static util::Status ValidateSwap(const ModelState& current,
                                                const ModelState& next);
};

}  // namespace imr::serve

#endif  // IMR_SERVE_MODEL_STATE_H_
