#include "serve/model_state.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace imr::serve {

util::StatusOr<std::shared_ptr<const ModelState>> ModelState::Create(
    Snapshot snapshot, bool quantized, uint64_t generation,
    const ModelState* base) {
  if (snapshot.model == nullptr) {
    return util::InvalidArgument("snapshot carries no model");
  }
  auto state = std::make_shared<ModelState>();
  state->generation = generation;
  state->snapshot = std::move(snapshot);
  state->snapshot.model->SetTraining(false);  // serving is deterministic
  if (quantized) {
    if (state->snapshot.quantized_embeddings.empty() &&
        state->snapshot.embeddings.num_vertices() > 0) {
      // Pre-quantization snapshot: build the int8 store at load time so the
      // quantized path works against any v1 file.
      state->snapshot.quantized_embeddings =
          graph::QuantizedEmbeddingStore::Quantize(state->snapshot.embeddings);
    }
    state->snapshot.model->EnableQuantizedInference();
  }
  if (base != nullptr && base->snapshot.tables == state->snapshot.tables) {
    // Same immutable tables handle (delta generation): share the index.
    state->entity_by_name = base->entity_by_name;
  } else {
    auto index = std::make_shared<EntityIndex>();
    const std::vector<EntityRecord>& entities = state->snapshot.entities();
    index->reserve(entities.size());
    for (size_t i = 0; i < entities.size(); ++i) {
      index->emplace(entities[i].name, static_cast<int64_t>(i));
    }
    state->entity_by_name = std::move(index);
  }
  return std::shared_ptr<const ModelState>(std::move(state));
}

util::Status ModelState::ValidateSwap(const ModelState& current,
                                      const ModelState& next) {
  const re::PaModelConfig& now = current.snapshot.manifest.model_config;
  const re::PaModelConfig& incoming = next.snapshot.manifest.model_config;
  if (incoming.num_relations != now.num_relations) {
    return util::FailedPrecondition(util::StrFormat(
        "snapshot swap rejected: new generation has %d relations, serving "
        "%d — responses would silently change meaning",
        incoming.num_relations, now.num_relations));
  }
  if (incoming.use_mutual_relation != now.use_mutual_relation ||
      incoming.mutual_relation_dim != now.mutual_relation_dim) {
    return util::FailedPrecondition(
        "snapshot swap rejected: mutual-relation configuration differs from "
        "the serving generation");
  }
  return util::OkStatus();
}

}  // namespace imr::serve
