// Fixed-capacity least-recently-used cache, used by the inference engine to
// hold entity-pair mutual-relation vectors. The Zipf skew of entity-pair
// queries (paper Fig. 1(a)) means a small cache absorbs most lookups.
//
// Not thread-safe by itself: the cache carries no lock so single-threaded
// users pay nothing. Concurrent owners must guard the instance with a
// util::Mutex and annotate the member IMR_GUARDED_BY(that_mutex) — see
// InferenceEngine::mr_cache_ — so a clang IMR_THREAD_SAFETY build proves
// every access is locked.
#ifndef IMR_SERVE_LRU_CACHE_H_
#define IMR_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace imr::serve {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// capacity 0 disables the cache entirely (every Get misses, Put drops).
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }

  /// Returns a copy of the cached value and marks it most-recently-used.
  std::optional<Value> Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    entries_.splice(entries_.begin(), entries_, it->second);
    return entries_.front().second;
  }

  /// Inserts (or refreshes) a value, evicting the least-recently-used entry
  /// when full.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    entries_.emplace_front(key, std::move(value));
    index_[key] = entries_.begin();
  }

  bool Contains(const Key& key) const { return index_.count(key) > 0; }

  void Clear() {
    entries_.clear();
    index_.clear();
  }

 private:
  size_t capacity_;
  std::list<std::pair<Key, Value>> entries_;  // front = most recent
  std::unordered_map<Key,
                     typename std::list<std::pair<Key, Value>>::iterator, Hash>
      index_;
};

}  // namespace imr::serve

#endif  // IMR_SERVE_LRU_CACHE_H_
