// Entity-pair-sharded LRU cache: the mutual-relation cache split into N
// independently locked shards so concurrent serving threads stop
// serializing on one global cache mutex. hash(key) picks the shard; each
// shard is a plain LruCache behind its own util::Mutex, and per-shard
// hit/miss counters are relaxed atomics (PoolStats-style) so reading stats
// never contends with the request path.
//
// Sharding preserves the hit-rate economics of the single cache: the Zipf
// skew that let one small LRU absorb ~90% of pair lookups (paper Fig. 1(a))
// splits evenly across shards under any reasonable hash, so a 16-way
// sharded cache of the same total capacity hits within noise of the global
// one while scaling Get/Put throughput with the shard count.
//
// CRITICAL: shard mutexes are leaf locks on the request hot path. Never
// block while holding one — no CondVar waits, no file I/O, no snapshot
// loading. imr_lint's blocking-under-shard-lock rule enforces this for
// src/serve/.
#ifndef IMR_SERVE_SHARDED_CACHE_H_
#define IMR_SERVE_SHARDED_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "serve/lru_cache.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace imr::serve {

/// One shard's traffic counters, snapshotted without locks.
struct CacheShardStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  size_t size = 0;  // entries currently resident
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` is the TOTAL entry budget, split evenly across shards
  /// (rounded up, so small capacities still admit one entry per shard).
  /// capacity 0 disables caching entirely; shards is clamped to >= 1.
  ShardedLruCache(size_t capacity, size_t shards)
      : capacity_(capacity), mask_(0) {
    size_t n = shards == 0 ? 1 : shards;
    // Round the shard count up to a power of two so the shard pick is a
    // mask, not a division, on the hot path.
    size_t pow2 = 1;
    while (pow2 < n) pow2 <<= 1;
    mask_ = pow2 - 1;
    const size_t per_shard =
        capacity == 0 ? 0 : (capacity + pow2 - 1) / pow2;
    shards_.reserve(pow2);
    for (size_t i = 0; i < pow2; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }

  /// Returns a copy of the cached value and bumps its recency. Counts a
  /// hit or miss on the owning shard.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::optional<Value> value;
    {
      util::MutexLock lock(shard.mutex);
      value = shard.cache.Get(key);
    }
    if (value.has_value()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Inserts (or refreshes) under the owning shard's lock only.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    Shard& shard = ShardFor(key);
    util::MutexLock lock(shard.mutex);
    shard.cache.Put(key, std::move(value));
  }

  /// Drops every entry (counters are preserved). Used after a snapshot
  /// swap to stop stale-generation entries from squatting on capacity.
  void Clear() {
    for (auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      shard->cache.Clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      util::MutexLock lock(shard->mutex);
      total += shard->cache.size();
    }
    return total;
  }

  /// Lock-free counter snapshot plus (briefly locked) per-shard sizes.
  std::vector<CacheShardStats> ShardStats() const {
    std::vector<CacheShardStats> stats(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      stats[i].hits = shards_[i]->hits.load(std::memory_order_relaxed);
      stats[i].misses = shards_[i]->misses.load(std::memory_order_relaxed);
      util::MutexLock lock(shards_[i]->mutex);
      stats[i].size = shards_[i]->cache.size();
    }
    return stats;
  }

  uint64_t TotalHits() const {
    uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard->hits.load(std::memory_order_relaxed);
    return total;
  }

  uint64_t TotalMisses() const {
    uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard->misses.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct Shard {
    explicit Shard(size_t per_shard_capacity) : cache(per_shard_capacity) {}
    mutable util::Mutex mutex;
    LruCache<Key, Value, Hash> cache IMR_GUARDED_BY(mutex);
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
  };

  Shard& ShardFor(const Key& key) const {
    // Mix the hash before masking: std::hash<integral> is identity in
    // libstdc++, and pair keys share low bits.
    uint64_t h = static_cast<uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h & mask_];
  }

  size_t capacity_;
  size_t mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace imr::serve

#endif  // IMR_SERVE_SHARDED_CACHE_H_
