#include "serve/admission.h"

#include <algorithm>
#include <thread>

#include "util/string_util.h"

namespace imr::serve {

AdmissionController::AdmissionController(int replicas,
                                         const AdmissionOptions& options)
    : options_(options) {
  if (replicas < 1) replicas = 1;
  depth_.reserve(static_cast<size_t>(replicas));
  for (int i = 0; i < replicas; ++i) {
    depth_.push_back(std::make_unique<ReplicaCounters>());
  }
  max_concurrent_ = options.max_concurrent;
  if (max_concurrent_ <= 0) {
    // Auto: one forward per core. Oversubscribing cores moves queueing
    // delay INTO the forward (time-slicing), which is exactly the tail
    // blowup admission control exists to prevent.
    max_concurrent_ =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  slots_free_ = max_concurrent_;
}

util::StatusOr<int> AdmissionController::Admit() {
  // Least-depth pick with a rotating starting point, so equal-depth
  // replicas share the load instead of replica 0 absorbing everything.
  const size_t n = depth_.size();
  const size_t start =
      round_robin_.fetch_add(1, std::memory_order_relaxed) % n;
  int best = -1;
  int64_t best_depth = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t r = (start + i) % n;
    const int64_t d = depth_[r]->depth.load(std::memory_order_relaxed);
    if (best < 0 || d < best_depth) {
      best = static_cast<int>(r);
      best_depth = d;
    }
  }
  if (options_.max_queue > 0 &&
      best_depth >= static_cast<int64_t>(options_.max_queue)) {
    depth_[static_cast<size_t>(best)]->rejected.fetch_add(
        1, std::memory_order_relaxed);
    const int64_t ewma =
        service_ewma_us_.load(std::memory_order_relaxed);
    const int64_t retry_after_us =
        std::max<int64_t>(100, best_depth * std::max<int64_t>(ewma, 1) /
                                   std::max(1, max_concurrent_));
    return util::Unavailable(util::StrFormat(
        "router queue full (%lld pending per replica, max %zu); retry after "
        "~%lld us",
        static_cast<long long>(best_depth), options_.max_queue,
        static_cast<long long>(retry_after_us)));
  }
  ReplicaCounters& counters = *depth_[static_cast<size_t>(best)];
  counters.admitted.fetch_add(1, std::memory_order_relaxed);
  const int64_t now_depth =
      counters.depth.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t peak = counters.peak.load(std::memory_order_relaxed);
  while (static_cast<uint64_t>(now_depth) > peak &&
         !counters.peak.compare_exchange_weak(
             peak, static_cast<uint64_t>(now_depth),
             std::memory_order_relaxed)) {
  }
  return best;
}

void AdmissionController::OnDequeue(int replica) {
  depth_[static_cast<size_t>(replica)]->depth.fetch_sub(
      1, std::memory_order_relaxed);
}

bool AdmissionController::ExpiredInQueue(
    std::chrono::steady_clock::time_point enqueue_time) const {
  if (options_.deadline_us <= 0) return false;
  const auto waited = std::chrono::steady_clock::now() - enqueue_time;
  return std::chrono::duration_cast<std::chrono::microseconds>(waited)
             .count() > options_.deadline_us;
}

util::Status AdmissionController::Shed(int replica, double waited_us) {
  depth_[static_cast<size_t>(replica)]->shed.fetch_add(
      1, std::memory_order_relaxed);
  return util::Unavailable(util::StrFormat(
      "request shed: waited %.0f us in queue, deadline budget is %lld us",
      waited_us, static_cast<long long>(options_.deadline_us)));
}

void AdmissionController::AcquireSlot() {
  util::MutexLock lock(slot_mutex_);
  while (slots_free_ == 0) slot_cv_.Wait(slot_mutex_);
  --slots_free_;
}

void AdmissionController::ReleaseSlot() {
  {
    util::MutexLock lock(slot_mutex_);
    ++slots_free_;
  }
  slot_cv_.NotifyOne();
}

void AdmissionController::OnComplete(double service_us) {
  // EWMA with gain 1/8, integer microseconds: cheap, lock-free, and close
  // enough for a retry-after hint.
  const int64_t sample = static_cast<int64_t>(service_us);
  int64_t current = service_ewma_us_.load(std::memory_order_relaxed);
  const int64_t next =
      current == 0 ? sample : current + (sample - current) / 8;
  service_ewma_us_.store(next, std::memory_order_relaxed);
}

AdmissionCounters AdmissionController::Counters(int replica) const {
  const ReplicaCounters& c = *depth_[static_cast<size_t>(replica)];
  AdmissionCounters out;
  out.admitted = c.admitted.load(std::memory_order_relaxed);
  out.rejected_queue_full = c.rejected.load(std::memory_order_relaxed);
  out.shed_deadline = c.shed.load(std::memory_order_relaxed);
  const int64_t depth = c.depth.load(std::memory_order_relaxed);
  out.queue_depth = depth > 0 ? static_cast<uint64_t>(depth) : 0;
  out.queue_peak = c.peak.load(std::memory_order_relaxed);
  return out;
}

AdmissionCounters AdmissionController::TotalCounters() const {
  AdmissionCounters total;
  for (int r = 0; r < replicas(); ++r) {
    const AdmissionCounters c = Counters(r);
    total.admitted += c.admitted;
    total.rejected_queue_full += c.rejected_queue_full;
    total.shed_deadline += c.shed_deadline;
    total.queue_depth += c.queue_depth;
    total.queue_peak = std::max(total.queue_peak, c.queue_peak);
  }
  return total;
}

}  // namespace imr::serve
