#include "serve/delta.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/mmap_file.h"
#include "util/rng.h"
#include "util/serialization.h"
#include "util/string_util.h"

namespace imr::serve {

namespace {

constexpr uint32_t kTagEmbeddingRows = 0x44454D42;  // "DEMB"
constexpr uint32_t kTagQuantizedRows = 0x4451454D;  // "DQEM"
constexpr uint32_t kTagParameters = 0x4450524D;     // "DPRM"
constexpr uint32_t kTagEnd = 0x53454E44;            // "SEND"
constexpr size_t kRowAlign = 64;

util::Status SkipPad(util::BinaryReader* reader, uint64_t alignment) {
  char scratch[kRowAlign];
  const uint64_t rem = reader->offset() % alignment;
  if (rem != 0) reader->ReadBytes(scratch, alignment - rem);
  return reader->status();
}

/// Reads and validates a touched-row id list: ascending, unique, in
/// [0, num_vertices).
util::Status ReadRowIds(util::BinaryReader* reader, uint32_t count,
                        int num_vertices, std::vector<uint32_t>* out) {
  out->clear();
  out->reserve(count);
  int64_t previous = -1;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t id = reader->ReadU32();
    IMR_RETURN_IF_ERROR(reader->status());
    if (static_cast<int64_t>(id) <= previous ||
        id >= static_cast<uint32_t>(num_vertices)) {
      return util::InvalidArgument(util::StrFormat(
          "delta '%s': row id list not ascending/unique/in-range at byte "
          "offset %llu",
          reader->path().c_str(),
          static_cast<unsigned long long>(reader->offset())));
    }
    previous = static_cast<int64_t>(id);
    out->push_back(id);
  }
  return util::OkStatus();
}

}  // namespace

util::StatusOr<DeltaHeader> ReadDeltaHeader(const std::string& path) {
  auto file = util::MmapFile::Open(path);
  IMR_RETURN_IF_ERROR(file.status());
  // Minimum well-formed file: header + base hash + an empty DEMB would
  // already exceed this, so 28 bytes is a pure plausibility floor.
  if ((*file)->size() < 28) {
    return util::InvalidArgument("delta '" + path + "': file too small");
  }
  const uint8_t* bytes = (*file)->data();
  uint32_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, bytes, 4);
  std::memcpy(&version, bytes + 4, 4);
  if (magic != kDeltaMagic) {
    return util::InvalidArgument(
        util::StrFormat("bad magic in '%s': file has 0x%08x, expected 0x%08x",
                        path.c_str(), magic, kDeltaMagic));
  }
  if (version != kDeltaFormatVersion) {
    return util::InvalidArgument(util::StrFormat(
        "unsupported version in '%s': file has %u, expected %u", path.c_str(),
        version, kDeltaFormatVersion));
  }
  uint32_t end_tag = 0;
  std::memcpy(&end_tag, bytes + (*file)->size() - 12, 4);
  if (end_tag != kTagEnd) {
    return util::InvalidArgument("delta '" + path +
                                 "': missing end sentinel (truncated?)");
  }
  DeltaHeader header;
  std::memcpy(&header.base_hash, bytes + 8, 8);
  std::memcpy(&header.result_hash, bytes + (*file)->size() - 8, 8);
  return header;
}

util::StatusOr<uint64_t> SaveDelta(uint64_t base_hash,
                                   const graph::EmbeddingStore& embeddings,
                                   const re::PaModel* model,
                                   const DeltaSpec& spec,
                                   const std::string& path) {
  std::vector<int> rows = spec.touched_rows;
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  if (!rows.empty() &&
      (rows.front() < 0 || rows.back() >= embeddings.num_vertices())) {
    return util::InvalidArgument(
        "delta: touched row outside the embedding store");
  }
  std::vector<nn::NamedParameter> carried;
  if (!spec.changed_params.empty()) {
    if (model == nullptr) {
      return util::InvalidArgument(
          "delta: changed_params given but no model");
    }
    const std::vector<nn::NamedParameter> params = model->Parameters();
    for (const std::string& name : spec.changed_params) {
      const auto it =
          std::find_if(params.begin(), params.end(),
                       [&name](const nn::NamedParameter& parameter) {
                         return parameter.name == name;
                       });
      if (it == params.end()) {
        return util::InvalidArgument("delta: unknown parameter '" + name +
                                     "'");
      }
      carried.push_back(*it);
    }
  }

  const int dim = embeddings.dim();
  util::BinaryWriter writer(path, kDeltaMagic, kDeltaFormatVersion);
  IMR_RETURN_IF_ERROR(writer.status());
  writer.StartHashing(base_hash);
  writer.WriteU64(base_hash);

  writer.WriteU32(kTagEmbeddingRows);
  writer.WriteU32(static_cast<uint32_t>(embeddings.num_vertices()));
  writer.WriteU32(static_cast<uint32_t>(dim));
  writer.WriteU32(static_cast<uint32_t>(rows.size()));
  for (int row : rows) writer.WriteU32(static_cast<uint32_t>(row));
  writer.PadTo(kRowAlign);
  for (int row : rows) {
    writer.WriteRawBytes(embeddings.Vector(row),
                         static_cast<size_t>(dim) * sizeof(float));
  }

  if (spec.include_quantized) {
    // Requantize the carried rows at save time (the same QuantizeRow kernel
    // snapshots use), so apply is a straight memcpy and the patched QEMB is
    // bit-identical to a full re-save.
    std::vector<float> scales(rows.size());
    std::vector<int8_t> qrows(rows.size() * static_cast<size_t>(dim));
    for (size_t i = 0; i < rows.size(); ++i) {
      graph::QuantizedEmbeddingStore::QuantizeRow(
          embeddings.Vector(rows[i]), dim,
          qrows.data() + i * static_cast<size_t>(dim), &scales[i]);
    }
    writer.WriteU32(kTagQuantizedRows);
    writer.WriteU32(static_cast<uint32_t>(rows.size()));
    for (int row : rows) writer.WriteU32(static_cast<uint32_t>(row));
    writer.PadTo(kRowAlign);
    writer.WriteRawBytes(scales.data(), scales.size() * sizeof(float));
    writer.PadTo(kRowAlign);
    writer.WriteRawBytes(qrows.data(), qrows.size());
  }

  if (!carried.empty()) {
    writer.WriteU32(kTagParameters);
    writer.WriteU32(static_cast<uint32_t>(carried.size()));
    for (const nn::NamedParameter& parameter : carried) {
      writer.WriteString(parameter.name);
      writer.WriteU64(parameter.tensor.size());
      writer.WriteRawBytes(parameter.tensor.data().data(),
                           parameter.tensor.size() * sizeof(float));
    }
  }

  writer.StopHashing();
  const uint64_t result_hash = writer.hash();
  writer.WriteU32(kTagEnd);
  writer.WriteU64(result_hash);
  IMR_RETURN_IF_ERROR(writer.Close());
  return result_hash;
}

util::StatusOr<Snapshot> ApplyDelta(const Snapshot& base,
                                    const std::string& path) {
  if (base.model == nullptr) {
    return util::InvalidArgument("delta base snapshot carries no model");
  }
  // Deltas are authenticated end to end: result_hash covers every byte
  // between the header and the end sentinel, seeded with the base hash.
  // Verify it up front — the file is O(touched rows) small, so one hash
  // sweep is cheap — so a corrupt delta can never silently patch a
  // generation. (Snapshot opens skip this to stay O(header); deltas are
  // the write path into a live server and get the strict check.)
  {
    auto file = util::MmapFile::Open(path);
    IMR_RETURN_IF_ERROR(file.status());
    if ((*file)->size() < 28) {
      return util::InvalidArgument("delta '" + path + "': file too small");
    }
    const uint8_t* bytes = (*file)->data();
    uint64_t stored_base = 0;
    uint64_t stored_result = 0;
    std::memcpy(&stored_base, bytes + 8, 8);
    std::memcpy(&stored_result, bytes + (*file)->size() - 8, 8);
    const uint64_t actual =
        util::Fnv1a(bytes + 8, (*file)->size() - 20, stored_base);
    if (actual != stored_result) {
      return util::InvalidArgument(util::StrFormat(
          "delta '%s': content hash mismatch (file says %016llx, payload "
          "hashes to %016llx) — corrupt or tampered delta",
          path.c_str(), static_cast<unsigned long long>(stored_result),
          static_cast<unsigned long long>(actual)));
    }
  }
  util::BinaryReader reader(path, kDeltaMagic, kDeltaFormatVersion);
  IMR_RETURN_IF_ERROR(reader.status());
  const uint64_t base_hash = reader.ReadU64();
  IMR_RETURN_IF_ERROR(reader.status());
  if (base_hash != base.content_hash) {
    return util::FailedPrecondition(util::StrFormat(
        "delta '%s' applies to base hash %016llx but the serving generation "
        "is %016llx",
        path.c_str(), static_cast<unsigned long long>(base_hash),
        static_cast<unsigned long long>(base.content_hash)));
  }

  const int num_vertices = base.embeddings.num_vertices();
  const int dim = base.embeddings.dim();
  const size_t row_bytes = static_cast<size_t>(dim) * sizeof(float);

  if (reader.ReadU32() != kTagEmbeddingRows || !reader.status().ok()) {
    IMR_RETURN_IF_ERROR(reader.status());
    return util::InvalidArgument("delta '" + path +
                                 "': missing embedding-rows section");
  }
  const uint32_t file_nv = reader.ReadU32();
  const uint32_t file_dim = reader.ReadU32();
  const uint32_t count = reader.ReadU32();
  IMR_RETURN_IF_ERROR(reader.status());
  if (file_nv != static_cast<uint32_t>(num_vertices) ||
      file_dim != static_cast<uint32_t>(dim)) {
    return util::InvalidArgument(util::StrFormat(
        "delta '%s' is shaped [%u x %u] but the base serves [%d x %d]",
        path.c_str(), file_nv, file_dim, num_vertices, dim));
  }
  std::vector<uint32_t> rows;
  IMR_RETURN_IF_ERROR(ReadRowIds(&reader, count, num_vertices, &rows));
  IMR_RETURN_IF_ERROR(SkipPad(&reader, kRowAlign));

  // The fast path block-aliases the base mapping: a MAP_PRIVATE clone of
  // the same pages, where only the row-blocks memcpy'd below are actually
  // copied (kernel CoW) — everything else keeps sharing the base's physical
  // pages. The owned fallback (v1 base) copies the matrix once instead.
  const bool zero_copy = base.mapping != nullptr && base.layout.valid &&
                         base.embeddings.borrowed();
  std::shared_ptr<util::MmapFile> clone;
  uint8_t* clone_bytes = nullptr;
  graph::EmbeddingStore patched;
  if (zero_copy) {
    auto cloned = base.mapping->PrivateCopy();
    IMR_RETURN_IF_ERROR(cloned.status());
    clone = std::move(*cloned);
    clone_bytes = clone->mutable_data();
    for (uint32_t row : rows) {
      reader.ReadBytes(
          clone_bytes + base.layout.embd_data + row * row_bytes, row_bytes);
    }
  } else {
    patched = graph::EmbeddingStore(num_vertices, dim);
    std::memcpy(patched.Vector(0), base.embeddings.raw(),
                base.embeddings.value_count() * sizeof(float));
    for (uint32_t row : rows) {
      reader.ReadBytes(patched.Vector(static_cast<int>(row)), row_bytes);
    }
  }
  IMR_RETURN_IF_ERROR(reader.status());

  const bool base_has_qemb = !base.quantized_embeddings.empty();
  const bool qemb_in_place = zero_copy && base_has_qemb &&
                             base.layout.qemb_data != 0 &&
                             base.quantized_embeddings.borrowed();
  bool quantized_patched = false;

  // Rebuild only the parameter set (small next to the embedding table):
  // a fresh skeleton, values copied from the base registry, then the
  // delta's overrides.
  util::Rng init_rng(0x5EED);
  auto model =
      std::make_unique<re::PaModel>(base.manifest.model_config, &init_rng);
  {
    const std::vector<nn::NamedParameter> src = base.model->Parameters();
    const std::vector<nn::NamedParameter> dst = model->Parameters();
    if (src.size() != dst.size()) {
      return util::Internal("delta: base/clone parameter registries differ");
    }
    for (size_t i = 0; i < src.size(); ++i) {
      if (src[i].name != dst[i].name ||
          src[i].tensor.size() != dst[i].tensor.size()) {
        return util::Internal(
            "delta: base/clone parameter registries differ");
      }
      nn::NamedParameter writable = dst[i];  // handle shares the node
      writable.tensor.mutable_data() = src[i].tensor.data();
    }
  }
  model->SetTraining(false);

  uint32_t tag = reader.ReadU32();
  IMR_RETURN_IF_ERROR(reader.status());
  if (tag == kTagQuantizedRows) {
    const uint32_t qcount = reader.ReadU32();
    IMR_RETURN_IF_ERROR(reader.status());
    std::vector<uint32_t> qrows;
    IMR_RETURN_IF_ERROR(ReadRowIds(&reader, qcount, num_vertices, &qrows));
    IMR_RETURN_IF_ERROR(SkipPad(&reader, kRowAlign));
    std::vector<float> scales(qcount);
    reader.ReadBytes(scales.data(), scales.size() * sizeof(float));
    IMR_RETURN_IF_ERROR(SkipPad(&reader, kRowAlign));
    if (qemb_in_place) {
      for (size_t i = 0; i < qrows.size(); ++i) {
        std::memcpy(clone_bytes + base.layout.qemb_scales +
                        static_cast<size_t>(qrows[i]) * sizeof(float),
                    &scales[i], sizeof(float));
        reader.ReadBytes(clone_bytes + base.layout.qemb_data +
                             static_cast<size_t>(qrows[i]) *
                                 static_cast<size_t>(dim),
                         static_cast<size_t>(dim));
      }
      quantized_patched = true;
    } else {
      // No in-place QEMB to patch (v1 base or no QEMB section): consume
      // the payload; the owned path rebuilds below from the fp32 rows,
      // which QuantizeRow maps to the same bits.
      std::vector<int8_t> discard(static_cast<size_t>(dim));
      for (uint32_t i = 0; i < qcount; ++i) {
        reader.ReadBytes(discard.data(), discard.size());
      }
    }
    IMR_RETURN_IF_ERROR(reader.status());
    tag = reader.ReadU32();
    IMR_RETURN_IF_ERROR(reader.status());
  }
  if (qemb_in_place && !quantized_patched) {
    // Delta without a DQEM section against a quantized base: requantize
    // the touched rows locally from the already-patched fp32 rows.
    for (uint32_t row : rows) {
      float scale = 0.0f;
      graph::QuantizedEmbeddingStore::QuantizeRow(
          reinterpret_cast<const float*>(clone_bytes +
                                         base.layout.embd_data +
                                         row * row_bytes),
          dim,
          reinterpret_cast<int8_t*>(clone_bytes + base.layout.qemb_data +
                                    static_cast<size_t>(row) *
                                        static_cast<size_t>(dim)),
          &scale);
      std::memcpy(clone_bytes + base.layout.qemb_scales +
                      static_cast<size_t>(row) * sizeof(float),
                  &scale, sizeof(float));
    }
  }

  if (tag == kTagParameters) {
    const uint32_t param_count = reader.ReadU32();
    IMR_RETURN_IF_ERROR(reader.status());
    const std::vector<nn::NamedParameter> params = model->Parameters();
    if (param_count > params.size()) {
      return util::InvalidArgument("delta '" + path +
                                   "': more parameters than the model has");
    }
    for (uint32_t i = 0; i < param_count; ++i) {
      const std::string name = reader.ReadString();
      const uint64_t values = reader.ReadU64();
      IMR_RETURN_IF_ERROR(reader.status());
      const auto it =
          std::find_if(params.begin(), params.end(),
                       [&name](const nn::NamedParameter& parameter) {
                         return parameter.name == name;
                       });
      if (it == params.end()) {
        return util::InvalidArgument("delta '" + path +
                                     "': unknown parameter '" + name + "'");
      }
      if (values != it->tensor.size()) {
        return util::InvalidArgument(util::StrFormat(
            "delta '%s': parameter '%s' carries %llu values, model expects "
            "%zu",
            path.c_str(), name.c_str(),
            static_cast<unsigned long long>(values), it->tensor.size()));
      }
      nn::NamedParameter writable = *it;
      reader.ReadBytes(writable.tensor.mutable_data().data(),
                       values * sizeof(float));
      IMR_RETURN_IF_ERROR(reader.status());
    }
    tag = reader.ReadU32();
    IMR_RETURN_IF_ERROR(reader.status());
  }
  if (tag != kTagEnd) {
    return util::InvalidArgument(util::StrFormat(
        "delta '%s': expected section or end sentinel tag, found 0x%08x",
        path.c_str(), tag));
  }
  const uint64_t result_hash = reader.ReadU64();
  IMR_RETURN_IF_ERROR(reader.status());

  Snapshot next;
  next.manifest = base.manifest;
  next.tables = base.tables;  // refcount bump, not an O(vocab) copy
  next.knn = base.knn;
  next.model = std::move(model);
  next.content_hash = result_hash;
  next.format_version = base.format_version;
  if (zero_copy) {
    next.embeddings = graph::EmbeddingStore::View(
        num_vertices, dim,
        reinterpret_cast<const float*>(clone->data() +
                                       base.layout.embd_data),
        clone);
    if (qemb_in_place) {
      next.quantized_embeddings = graph::QuantizedEmbeddingStore::View(
          num_vertices, dim,
          reinterpret_cast<const int8_t*>(clone->data() +
                                          base.layout.qemb_data),
          reinterpret_cast<const float*>(clone->data() +
                                         base.layout.qemb_scales),
          clone);
    }
    next.mapping = std::move(clone);
    next.layout = base.layout;
  } else {
    if (base_has_qemb) {
      // Owned fallback: requantizing the patched matrix reproduces the
      // same bits as patching (QuantizeRow is the single quantization
      // kernel everywhere).
      next.quantized_embeddings =
          graph::QuantizedEmbeddingStore::Quantize(patched);
    }
    next.embeddings = std::move(patched);
  }
  return next;
}

}  // namespace imr::serve
