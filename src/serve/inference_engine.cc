#include "serve/inference_engine.h"

#include <algorithm>
#include <iterator>
#include <numeric>
#include <utility>

#include "re/bag_dataset.h"
#include "tensor/buffer_pool.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace imr::serve {

namespace {

uint64_t PairKey(int64_t head, int64_t tail) {
  return (static_cast<uint64_t>(head) << 32) ^
         static_cast<uint64_t>(tail & 0xffffffff);
}

double MicrosBetween(std::chrono::steady_clock::time_point begin,
                     std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - begin).count();
}

/// Percentile of a sorted sample set (nearest-rank).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

InferenceEngine::InferenceEngine(std::shared_ptr<const ModelState> state,
                                 const EngineOptions& options)
    : options_(options),
      mr_cache_(options.mr_cache_capacity,
                options.cache_shards == 0 ? 1 : options.cache_shards) {
  IMR_CHECK(state != nullptr);
  state_.store(std::move(state), std::memory_order_release);
  if (options_.threads > 0) {
    own_pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  }
  if (options_.latency_samples > 0) {
    latency_ring_.reserve(options_.latency_samples);
  }
}

InferenceEngine::InferenceEngine(Snapshot snapshot,
                                 const EngineOptions& options)
    : InferenceEngine(
          [&] {
            auto state = ModelState::Create(std::move(snapshot),
                                            options.quantized,
                                            /*generation=*/1);
            IMR_CHECK(state.ok());
            return std::move(*state);
          }(),
          options) {}

InferenceEngine::~InferenceEngine() {
  bool join_dispatcher = false;
  {
    util::MutexLock lock(queue_mutex_);
    stop_ = true;
    join_dispatcher = dispatcher_started_;
  }
  queue_cv_.NotifyAll();
  if (join_dispatcher) dispatcher_.join();
}

util::StatusOr<std::unique_ptr<InferenceEngine>> InferenceEngine::Open(
    const std::string& snapshot_path, const EngineOptions& options) {
  auto snapshot = LoadSnapshot(snapshot_path);
  IMR_RETURN_IF_ERROR(snapshot.status());
  return std::make_unique<InferenceEngine>(std::move(*snapshot), options);
}

util::Status InferenceEngine::Reload(const std::string& snapshot_path) {
  // Load + prepare entirely off the request path: request threads keep
  // serving the current generation until the single atomic store below.
  auto snapshot = LoadSnapshot(snapshot_path);
  IMR_RETURN_IF_ERROR(snapshot.status());
  const std::shared_ptr<const ModelState> current = CurrentState();
  auto next = ModelState::Create(std::move(*snapshot), options_.quantized,
                                 current->generation + 1);
  IMR_RETURN_IF_ERROR(next.status());
  IMR_RETURN_IF_ERROR(ModelState::ValidateSwap(*current, **next));
  SwapState(std::move(*next));
  return util::OkStatus();
}

void InferenceEngine::SwapState(std::shared_ptr<const ModelState> state) {
  IMR_CHECK(state != nullptr);
  state_.store(std::move(state), std::memory_order_release);
  // Old-generation cache entries are unreachable (keys embed the
  // generation); clear them eagerly so they stop squatting on capacity.
  // In-flight old-generation requests may still Put a few entries after
  // this — they are equally unreachable and age out through the LRU.
  mr_cache_.Clear();
}

util::ThreadPool& InferenceEngine::pool() {
  return own_pool_ ? *own_pool_ : util::GlobalPool();
}

util::StatusOr<re::Bag> InferenceEngine::BuildBag(const ModelState& state,
                                                  const Query& query,
                                                  bool* cache_hit) {
  *cache_hit = false;
  if (query.head < 0 || query.tail < 0) {
    return util::InvalidArgument("query entity ids must be >= 0");
  }
  if (query.sentences.empty()) {
    return util::InvalidArgument("query has no sentences");
  }
  for (const text::Sentence& sentence : query.sentences) {
    const int tokens = static_cast<int>(sentence.tokens.size());
    if (tokens == 0) return util::InvalidArgument("query sentence is empty");
    if (sentence.head_index < 0 || sentence.head_index >= tokens ||
        sentence.tail_index < 0 || sentence.tail_index >= tokens) {
      return util::InvalidArgument(util::StrFormat(
          "query mention index out of range (head %d, tail %d, %d tokens)",
          sentence.head_index, sentence.tail_index, tokens));
    }
  }
  const Snapshot& snapshot = state.snapshot;
  const re::PaModelConfig& config = snapshot.manifest.model_config;

  re::Bag bag;
  bag.head = query.head;
  bag.tail = query.tail;
  bag.sentences.reserve(query.sentences.size());
  for (const text::Sentence& sentence : query.sentences) {
    bag.sentences.push_back(re::MakeEncoderInput(
        sentence, snapshot.vocab(), snapshot.manifest.bag_options));
  }

  if (config.use_entity_type) {
    bag.head_types = query.head_types;
    bag.tail_types = query.tail_types;
    const auto table_types =
        [&snapshot](int64_t id) -> const std::vector<int>* {
      if (id < 0 || id >= static_cast<int64_t>(snapshot.entities().size()))
        return nullptr;
      return &snapshot.entities()[static_cast<size_t>(id)].type_ids;
    };
    if (bag.head_types.empty()) {
      if (const auto* types = table_types(query.head)) bag.head_types = *types;
    }
    if (bag.tail_types.empty()) {
      if (const auto* types = table_types(query.tail)) bag.tail_types = *types;
    }
    if (bag.head_types.empty() || bag.tail_types.empty()) {
      return util::InvalidArgument(
          "model uses entity types but the query has none and the snapshot "
          "entity table cannot supply them");
    }
  }

  if (config.use_mutual_relation) {
    if (query.head >= snapshot.embeddings.num_vertices() ||
        query.tail >= snapshot.embeddings.num_vertices()) {
      return util::InvalidArgument(util::StrFormat(
          "query entity pair (%lld, %lld) outside the embedding store (%d "
          "vertices)",
          static_cast<long long>(query.head),
          static_cast<long long>(query.tail),
          snapshot.embeddings.num_vertices()));
    }
    const MrCacheKey key{state.generation,
                         PairKey(query.head, query.tail)};
    bool hit = false;
    if (auto cached = mr_cache_.Get(key)) {
      bag.mutual_relation = std::move(*cached);
      hit = true;
    } else {
      // Computed outside any lock: the vector is a pure function of the
      // (immutable) embedding rows, so concurrent misses on the same pair
      // compute identical values.
      const int head = static_cast<int>(query.head);
      const int tail = static_cast<int>(query.tail);
      bag.mutual_relation =
          options_.quantized && !snapshot.quantized_embeddings.empty()
              ? snapshot.quantized_embeddings.MutualRelation(head, tail)
              : snapshot.embeddings.MutualRelation(head, tail);
      mr_cache_.Put(key, bag.mutual_relation);
    }
    *cache_hit = hit;
  }
  return bag;
}

util::StatusOr<Prediction> InferenceEngine::PredictOne(const Query& query) {
  // One pointer load pins the generation for the whole request: the bag,
  // the MR vector, and the forward pass all come from `state`, so the
  // response is consistent with exactly this generation even when a swap
  // lands mid-request (the old state stays alive until we return).
  const std::shared_ptr<const ModelState> state = CurrentState();
  const auto start = std::chrono::steady_clock::now();
  bool cache_hit = false;
  auto bag = BuildBag(*state, query, &cache_hit);
  IMR_RETURN_IF_ERROR(bag.status());

  Prediction prediction;
  prediction.probabilities = state->snapshot.model->Predict(*bag);
  // Long-tail rescue: when the snapshot carries a kNN predictor and the
  // model is unsure, blend in the vote over the same MR vector the forward
  // pass used (so the blend is consistent with this generation's
  // embeddings, cached or not).
  const re::KnnPredictor* knn = state->snapshot.knn.get();
  if (options_.knn && knn != nullptr &&
      static_cast<int>(bag->mutual_relation.size()) == knn->dim() &&
      static_cast<int>(prediction.probabilities.size()) ==
          knn->num_relations()) {
    prediction.knn_fired = knn->Interpolate(bag->mutual_relation.data(),
                                            &prediction.probabilities);
    if (prediction.knn_fired) {
      knn_fired_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  prediction.latency_us = MicrosBetween(start, end);
  prediction.mr_cache_hit = cache_hit;
  prediction.generation = state->generation;

  const int num_relations = static_cast<int>(prediction.probabilities.size());
  const int k = std::min(std::max(options_.top_k, 1), num_relations);
  std::vector<int> order(static_cast<size_t>(num_relations));
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](int a, int b) {
                      const float pa = prediction.probabilities[a];
                      const float pb = prediction.probabilities[b];
                      if (pa != pb) return pa > pb;
                      return a < b;  // deterministic tie-break
                    });
  prediction.top.reserve(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const int relation = order[static_cast<size_t>(i)];
    ScoredRelation scored;
    scored.relation = relation;
    if (static_cast<size_t>(relation) <
        state->snapshot.relation_names().size()) {
      scored.name =
          state->snapshot.relation_names()[static_cast<size_t>(relation)];
    }
    scored.probability =
        prediction.probabilities[static_cast<size_t>(relation)];
    prediction.top.push_back(std::move(scored));
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  {
    util::MutexLock lock(stats_mutex_);
    latency_sum_us_ += prediction.latency_us;
    latency_max_us_ = std::max(latency_max_us_, prediction.latency_us);
    if (options_.latency_samples > 0) {
      if (latency_ring_.size() < options_.latency_samples) {
        latency_ring_.push_back(prediction.latency_us);
      } else {
        latency_ring_[latency_next_] = prediction.latency_us;
        latency_next_ = (latency_next_ + 1) % options_.latency_samples;
      }
    }
    if (!first_request_seen_) {
      first_request_seen_ = true;
      first_request_time_ = start;
    }
    last_completion_time_ = end;
  }
  return prediction;
}

util::StatusOr<Prediction> InferenceEngine::Predict(const Query& query) {
  return PredictOne(query);
}

std::vector<util::StatusOr<Prediction>> InferenceEngine::PredictBatch(
    const std::vector<Query>& queries) {
  const int64_t n = static_cast<int64_t>(queries.size());
  std::vector<util::StatusOr<Prediction>> results(
      queries.size(),
      util::StatusOr<Prediction>(util::Internal("query not executed")));
  if (n == 0) return results;
  util::ThreadPool& workers = pool();
  if (workers.threads() <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) {
      results[static_cast<size_t>(i)] =
          PredictOne(queries[static_cast<size_t>(i)]);
    }
    return results;
  }
  workers.ParallelFor(0, n, /*grain=*/1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      results[static_cast<size_t>(i)] =
          PredictOne(queries[static_cast<size_t>(i)]);
    }
  });
  return results;
}

std::future<util::StatusOr<Prediction>> InferenceEngine::SubmitAsync(
    Query query) {
  std::future<util::StatusOr<Prediction>> future;
  {
    util::MutexLock lock(queue_mutex_);
    IMR_CHECK(!stop_);
    EnsureDispatcherLocked();
    queue_.push_back(PendingRequest{std::move(query), {}});
    future = queue_.back().promise.get_future();
  }
  queue_cv_.NotifyAll();
  return future;
}

void InferenceEngine::EnsureDispatcherLocked() {
  if (dispatcher_started_) return;
  dispatcher_started_ = true;
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

void InferenceEngine::DispatchLoop() {
  // Explicit Lock/Unlock rather than RAII: the lock is dropped across batch
  // execution in the middle of the loop body, which a scoped lock cannot
  // express (and which keeps the thread-safety analysis loop-consistent:
  // queue_mutex_ is held at the top of every iteration).
  queue_mutex_.Lock();
  while (true) {
    while (!stop_ && queue_.empty()) queue_cv_.Wait(queue_mutex_);
    if (queue_.empty()) {  // stop requested and nothing left to flush
      queue_mutex_.Unlock();
      return;
    }
    // Micro-batch window: linger briefly for more requests so bursts
    // coalesce into one parallel pass, but never past the flush deadline.
    if (!stop_ && options_.batch_delay_us > 0 &&
        static_cast<int>(queue_.size()) < options_.max_batch) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.batch_delay_us);
      while (!stop_ &&
             static_cast<int>(queue_.size()) < options_.max_batch) {
        if (!queue_cv_.WaitUntil(queue_mutex_, deadline)) break;  // timed out
      }
    }
    const size_t take = std::min(
        queue_.size(), static_cast<size_t>(std::max(options_.max_batch, 1)));
    std::vector<PendingRequest> batch;
    batch.reserve(take);
    std::move(queue_.begin(), queue_.begin() + static_cast<long>(take),
              std::back_inserter(batch));
    queue_.erase(queue_.begin(), queue_.begin() + static_cast<long>(take));
    queue_mutex_.Unlock();

    std::vector<Query> queries;
    queries.reserve(batch.size());
    for (PendingRequest& request : batch) {
      queries.push_back(std::move(request.query));
    }
    std::vector<util::StatusOr<Prediction>> results = PredictBatch(queries);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    queue_mutex_.Lock();
  }
}

util::StatusOr<Query> InferenceEngine::MakeQuery(
    const std::string& head_name, const std::string& tail_name,
    std::vector<text::Sentence> sentences) const {
  const std::shared_ptr<const ModelState> state = CurrentState();
  const ModelState::EntityIndex& index = *state->entity_by_name;
  const auto head = index.find(head_name);
  if (head == index.end()) {
    return util::NotFound("unknown entity '" + head_name + "'");
  }
  const auto tail = index.find(tail_name);
  if (tail == index.end()) {
    return util::NotFound("unknown entity '" + tail_name + "'");
  }
  Query query;
  query.head = head->second;
  query.tail = tail->second;
  for (text::Sentence& sentence : sentences) {
    const auto locate = [&sentence](const std::string& name) -> int {
      for (size_t t = 0; t < sentence.tokens.size(); ++t) {
        if (sentence.tokens[t] == name) return static_cast<int>(t);
      }
      return -1;
    };
    if (sentence.head_index < 0) sentence.head_index = locate(head_name);
    if (sentence.tail_index < 0) sentence.tail_index = locate(tail_name);
    if (sentence.head_index < 0 || sentence.tail_index < 0) {
      return util::InvalidArgument(
          "sentence does not mention both query entities");
    }
    sentence.head_entity = query.head;
    sentence.tail_entity = query.tail;
  }
  query.sentences = std::move(sentences);
  return query;
}

std::vector<double> InferenceEngine::LatencySamples() const {
  util::MutexLock lock(stats_mutex_);
  return latency_ring_;
}

EngineStats InferenceEngine::Stats() const {
  EngineStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.knn_fired = knn_fired_.load(std::memory_order_relaxed);
  stats.cache_shards = mr_cache_.ShardStats();
  for (const CacheShardStats& shard : stats.cache_shards) {
    stats.mr_cache_hits += shard.hits;
    stats.mr_cache_misses += shard.misses;
  }
  stats.generation = CurrentState()->generation;
  {
    util::MutexLock lock(stats_mutex_);
    if (stats.requests > 0) {
      stats.mean_latency_us =
          latency_sum_us_ / static_cast<double>(stats.requests);
      stats.max_latency_us = latency_max_us_;
      std::vector<double> sorted = latency_ring_;
      std::sort(sorted.begin(), sorted.end());
      stats.p50_latency_us = Percentile(sorted, 0.50);
      stats.p99_latency_us = Percentile(sorted, 0.99);
      stats.p999_latency_us = Percentile(sorted, 0.999);
      const double window_s =
          std::chrono::duration<double>(last_completion_time_ -
                                        first_request_time_)
              .count();
      stats.qps = window_s > 0.0
                      ? static_cast<double>(stats.requests) / window_s
                      : 0.0;
    }
  }
  const tensor::PoolStatsSnapshot pool = tensor::PoolStats();
  stats.pool_hits = pool.total_hits();
  stats.pool_misses = pool.total_misses();
  const tensor::SparseGradStatsSnapshot sparse = tensor::SparseGradStats();
  stats.sparse_rows_touched = sparse.rows_touched;
  stats.sparse_rows_total = sparse.rows_total;
  stats.sparse_dense_fallbacks = sparse.dense_fallbacks;
  return stats;
}

}  // namespace imr::serve
