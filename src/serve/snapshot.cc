#include "serve/snapshot.h"

#include <cstring>
#include <utility>

#include "util/rng.h"
#include "util/serialization.h"
#include "util/string_util.h"

namespace imr::serve {

namespace {

constexpr uint32_t kSnapshotMagic = 0x494D5253;  // "IMRS"

// Section tags, written before each section so a reader that drifts out of
// sync (or a file truncated on a boundary) fails on the next tag instead of
// interpreting unrelated bytes as lengths.
constexpr uint32_t kTagManifest = 0x4D414E49;    // "MANI"
constexpr uint32_t kTagVocabulary = 0x564F4342;  // "VOCB"
constexpr uint32_t kTagRelations = 0x52454C53;   // "RELS"
constexpr uint32_t kTagEntities = 0x454E5453;    // "ENTS"
constexpr uint32_t kTagEmbeddings = 0x454D4244;  // "EMBD"
constexpr uint32_t kTagParameters = 0x5041524D;  // "PARM"
constexpr uint32_t kTagQuantized = 0x51454D42;   // "QEMB" (optional)
constexpr uint32_t kTagAnn = 0x414E4E49;         // "ANNI" (optional)
constexpr uint32_t kTagEnd = 0x53454E44;         // "SEND"

// v2 framing constants.
constexpr size_t kSectionAlign = 64;
constexpr size_t kTrailerBytes = 16;  // u64 footer offset + version + magic
constexpr uint32_t kMaxSections = 16;

// Sanity caps applied to manifest counts before any dependent allocation,
// so a corrupt (fuzzed) manifest fails with a Status instead of an OOM.
constexpr int kMaxRelations = 1 << 20;
constexpr int kMaxVocabSize = 1 << 24;
constexpr int kMaxDim = 1 << 16;

uint64_t AlignUp(uint64_t offset, uint64_t alignment) {
  return (offset + alignment - 1) & ~(alignment - 1);
}

bool ValidEncoder(const std::string& kind) {
  return kind == "pcnn" || kind == "cnn" || kind == "gru" || kind == "bgwa";
}

util::Status ExpectTag(util::BinaryReader* reader, uint32_t tag,
                       const char* section) {
  const uint64_t at = reader->offset();
  const uint32_t found = reader->ReadU32();
  IMR_RETURN_IF_ERROR(reader->status());
  if (found != tag) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': expected %s section tag at byte offset %llu, found "
        "0x%08x",
        reader->path().c_str(), section,
        static_cast<unsigned long long>(at), found));
  }
  return util::OkStatus();
}

void WriteManifest(util::BinaryWriter* writer,
                   const SnapshotManifest& manifest) {
  const re::PaModelConfig& m = manifest.model_config;
  writer->WriteU32(static_cast<uint32_t>(m.num_relations));
  writer->WriteString(m.encoder);
  writer->WriteU32(static_cast<uint32_t>(m.aggregation));
  writer->WriteU32(m.use_mutual_relation ? 1 : 0);
  writer->WriteU32(m.use_entity_type ? 1 : 0);
  writer->WriteU32(static_cast<uint32_t>(m.type_dim));
  writer->WriteU32(static_cast<uint32_t>(m.mutual_relation_dim));
  writer->WriteFloat(m.auxiliary_re_loss);
  const nn::EncoderConfig& e = m.encoder_config;
  writer->WriteU32(static_cast<uint32_t>(e.vocab_size));
  writer->WriteU32(static_cast<uint32_t>(e.word_dim));
  writer->WriteU32(static_cast<uint32_t>(e.position_dim));
  writer->WriteU32(static_cast<uint32_t>(e.max_position));
  writer->WriteU32(static_cast<uint32_t>(e.window));
  writer->WriteU32(static_cast<uint32_t>(e.filters));
  writer->WriteFloat(e.dropout);
  writer->WriteFloat(e.word_dropout);
  const re::BagDatasetOptions& b = manifest.bag_options;
  writer->WriteU32(static_cast<uint32_t>(b.max_sentence_length));
  writer->WriteU32(static_cast<uint32_t>(b.max_position));
  writer->WriteU32(static_cast<uint32_t>(b.vocab_min_count));
  writer->WriteU32(b.blind_entities ? 1 : 0);
  writer->WriteU64(manifest.trained_steps);
  writer->WriteString(manifest.notes);
}

util::StatusOr<SnapshotManifest> ReadManifest(util::BinaryReader* reader) {
  SnapshotManifest manifest;
  re::PaModelConfig& m = manifest.model_config;
  m.num_relations = static_cast<int>(reader->ReadU32());
  m.encoder = reader->ReadString();
  const uint32_t aggregation = reader->ReadU32();
  m.use_mutual_relation = reader->ReadU32() != 0;
  m.use_entity_type = reader->ReadU32() != 0;
  m.type_dim = static_cast<int>(reader->ReadU32());
  m.mutual_relation_dim = static_cast<int>(reader->ReadU32());
  m.auxiliary_re_loss = reader->ReadFloat();
  nn::EncoderConfig& e = m.encoder_config;
  e.vocab_size = static_cast<int>(reader->ReadU32());
  e.word_dim = static_cast<int>(reader->ReadU32());
  e.position_dim = static_cast<int>(reader->ReadU32());
  e.max_position = static_cast<int>(reader->ReadU32());
  e.window = static_cast<int>(reader->ReadU32());
  e.filters = static_cast<int>(reader->ReadU32());
  e.dropout = reader->ReadFloat();
  e.word_dropout = reader->ReadFloat();
  re::BagDatasetOptions& b = manifest.bag_options;
  b.max_sentence_length = static_cast<int>(reader->ReadU32());
  b.max_position = static_cast<int>(reader->ReadU32());
  b.vocab_min_count = static_cast<int>(reader->ReadU32());
  b.blind_entities = reader->ReadU32() != 0;
  manifest.trained_steps = reader->ReadU64();
  manifest.notes = reader->ReadString();
  IMR_RETURN_IF_ERROR(reader->status());

  // Reject anything the model constructor would IMR_CHECK-crash on — or
  // allocate unboundedly for: the whole point of the manifest is that
  // corrupt input fails with a Status.
  const std::string& path = reader->path();
  if (m.num_relations < 2 || m.num_relations > kMaxRelations) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': manifest num_relations out of range");
  }
  if (!ValidEncoder(m.encoder)) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': unknown encoder '" + m.encoder + "'");
  }
  if (aggregation > static_cast<uint32_t>(re::Aggregation::kMax)) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': invalid aggregation id");
  }
  m.aggregation = static_cast<re::Aggregation>(aggregation);
  if (e.vocab_size <= 0 || e.vocab_size > kMaxVocabSize ||
      e.word_dim <= 0 || e.word_dim > kMaxDim || e.position_dim <= 0 ||
      e.position_dim > kMaxDim || e.max_position <= 0 ||
      e.max_position > kMaxRelations || e.window <= 0 ||
      e.window > kMaxDim || e.filters <= 0 || e.filters > kMaxDim) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': encoder dimension out of range");
  }
  if (!(e.dropout >= 0.0f && e.dropout < 1.0f) ||
      !(e.word_dropout >= 0.0f && e.word_dropout < 1.0f)) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': dropout outside [0, 1)");
  }
  if (m.use_mutual_relation &&
      (m.mutual_relation_dim <= 0 || m.mutual_relation_dim > kMaxDim)) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': mutual_relation_dim out of range");
  }
  if (m.use_entity_type && (m.type_dim <= 0 || m.type_dim > kMaxDim)) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': type_dim out of range");
  }
  if (b.max_sentence_length <= 0 || b.max_position <= 0) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': non-positive bag option");
  }
  return manifest;
}

// ---- section parsers shared by the v1 and v2 readers ----------------------

util::Status ReadRelationNames(util::BinaryReader* reader,
                               const SnapshotManifest& manifest,
                               const std::string& path,
                               std::vector<std::string>* out) {
  const uint64_t count = reader->ReadU64();
  IMR_RETURN_IF_ERROR(reader->status());
  if (count !=
      static_cast<uint64_t>(manifest.model_config.num_relations)) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': %llu relation names, manifest declares %d",
        path.c_str(), static_cast<unsigned long long>(count),
        manifest.model_config.num_relations));
  }
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    out->push_back(reader->ReadString());
    IMR_RETURN_IF_ERROR(reader->status());
  }
  return util::OkStatus();
}

util::Status ReadEntityTable(util::BinaryReader* reader,
                             const std::string& path,
                             std::vector<EntityRecord>* out) {
  const uint64_t count = reader->ReadU64();
  IMR_RETURN_IF_ERROR(reader->status());
  // Each record costs at least two u64 length prefixes, so any honest
  // count is bounded by the bytes left; anything bigger is corruption and
  // must fail before the reserve below allocates.
  if (count > reader->remaining() / 16) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': entity table too large");
  }
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    EntityRecord entity;
    entity.name = reader->ReadString();
    entity.type_ids = reader->ReadIntVector();
    IMR_RETURN_IF_ERROR(reader->status());
    out->push_back(std::move(entity));
  }
  return util::OkStatus();
}

util::Status ReadModelParameters(util::BinaryReader* reader,
                                 const SnapshotManifest& manifest,
                                 std::unique_ptr<re::PaModel>* out) {
  // The initializer draws are overwritten entirely by ReadParameters, so
  // the seed is arbitrary; validation happens against the registry the
  // manifest-built skeleton produces.
  util::Rng init_rng(0x5EED);
  *out = std::make_unique<re::PaModel>(manifest.model_config, &init_rng);
  IMR_RETURN_IF_ERROR((*out)->ReadParameters(reader));
  (*out)->SetTraining(false);
  return util::OkStatus();
}

/// Cross-section shape consistency, identical for both format versions.
util::Status ValidateCrossSections(const Snapshot& snapshot,
                                   const std::string& path) {
  if (snapshot.vocab().size() !=
      snapshot.manifest.model_config.encoder_config.vocab_size) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': vocabulary has %d words, manifest declares %d",
        path.c_str(), snapshot.vocab().size(),
        snapshot.manifest.model_config.encoder_config.vocab_size));
  }
  if (snapshot.manifest.model_config.use_mutual_relation &&
      snapshot.embeddings.dim() !=
          snapshot.manifest.model_config.mutual_relation_dim) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': embedding dim %d != mutual_relation_dim %d",
        path.c_str(), snapshot.embeddings.dim(),
        snapshot.manifest.model_config.mutual_relation_dim));
  }
  if (!snapshot.entities().empty() &&
      static_cast<int>(snapshot.entities().size()) !=
          snapshot.embeddings.num_vertices()) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': entity table has %zu rows, embeddings have %d "
        "vertices",
        path.c_str(), snapshot.entities().size(),
        snapshot.embeddings.num_vertices()));
  }
  return util::OkStatus();
}

util::Status ValidateQuantizedShape(
    const graph::QuantizedEmbeddingStore& quantized,
    const graph::EmbeddingStore& embeddings, const std::string& path) {
  if (quantized.num_vertices() != embeddings.num_vertices() ||
      quantized.dim() != embeddings.dim()) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': quantized embeddings [%d x %d] do not match fp32 "
        "embeddings [%d x %d]",
        path.c_str(), quantized.num_vertices(), quantized.dim(),
        embeddings.num_vertices(), embeddings.dim()));
  }
  return util::OkStatus();
}

// ---- v1: streamed parse-and-copy (the sanctioned mmap fallback) -----------

util::StatusOr<Snapshot> LoadSnapshotV1(const std::string& path) {
  util::BinaryReader reader(path, kSnapshotMagic, kSnapshotFormatV1);
  IMR_RETURN_IF_ERROR(reader.status());

  Snapshot snapshot;
  auto tables = std::make_shared<SnapshotTables>();
  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagManifest, "manifest"));
  {
    auto manifest = ReadManifest(&reader);
    IMR_RETURN_IF_ERROR(manifest.status());
    snapshot.manifest = std::move(*manifest);
  }

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagVocabulary, "vocabulary"));
  {
    auto vocab = text::Vocabulary::ReadFrom(&reader);
    IMR_RETURN_IF_ERROR(vocab.status());
    tables->vocab = std::move(*vocab);
  }

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagRelations, "relations"));
  IMR_RETURN_IF_ERROR(ReadRelationNames(&reader, snapshot.manifest, path,
                                        &tables->relation_names));

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagEntities, "entities"));
  IMR_RETURN_IF_ERROR(ReadEntityTable(&reader, path, &tables->entities));
  snapshot.tables = std::move(tables);

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagEmbeddings, "embeddings"));
  {
    // v1 has no offset table, so the matrix must be deserialize-copied.
    auto embeddings =
        graph::EmbeddingStore::ReadFrom(&reader);  // imr-lint: allow(snapshot-full-copy)
    IMR_RETURN_IF_ERROR(embeddings.status());
    snapshot.embeddings = std::move(*embeddings);
  }
  IMR_RETURN_IF_ERROR(ValidateCrossSections(snapshot, path));

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagParameters, "parameters"));
  IMR_RETURN_IF_ERROR(
      ReadModelParameters(&reader, snapshot.manifest, &snapshot.model));

  // The tail is a chain of optional sections in fixed order — [QEMB]
  // [ANNI] — closed by SEND. Pre-quantization files hit SEND immediately;
  // each reader branch consumes its section and reads the next tag.
  uint64_t tail_at = reader.offset();
  uint32_t tail_tag = reader.ReadU32();
  IMR_RETURN_IF_ERROR(reader.status());
  if (tail_tag == kTagQuantized) {
    auto quantized =
        graph::QuantizedEmbeddingStore::ReadFrom(&reader);  // imr-lint: allow(snapshot-full-copy)
    IMR_RETURN_IF_ERROR(quantized.status());
    IMR_RETURN_IF_ERROR(
        ValidateQuantizedShape(*quantized, snapshot.embeddings, path));
    snapshot.quantized_embeddings = std::move(*quantized);
    tail_at = reader.offset();
    tail_tag = reader.ReadU32();
    IMR_RETURN_IF_ERROR(reader.status());
  }
  if (tail_tag == kTagAnn) {
    auto knn = re::KnnPredictor::ReadFrom(&reader, snapshot.embeddings);
    IMR_RETURN_IF_ERROR(knn.status());
    if (knn->num_relations() !=
        snapshot.manifest.model_config.num_relations) {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': kNN section has %d relations, manifest declares %d",
          path.c_str(), knn->num_relations(),
          snapshot.manifest.model_config.num_relations));
    }
    snapshot.knn =
        std::make_shared<const re::KnnPredictor>(std::move(*knn));
    tail_at = reader.offset();
    tail_tag = reader.ReadU32();
    IMR_RETURN_IF_ERROR(reader.status());
  }
  if (tail_tag != kTagEnd) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': expected optional-section or end sentinel tag at "
        "byte offset %llu, found 0x%08x",
        path.c_str(), static_cast<unsigned long long>(tail_at), tail_tag));
  }
  snapshot.format_version = kSnapshotFormatV1;
  return snapshot;
}

// ---- v2: mmap zero-copy -----------------------------------------------------

struct SectionEntry {
  uint32_t tag = 0;
  uint64_t tag_offset = 0;
  uint64_t payload_offset = 0;
  uint64_t payload_end = 0;
};

util::StatusOr<Snapshot> LoadSnapshotV2(
    std::shared_ptr<util::MmapFile> mapping, const std::string& path) {
  const uint8_t* base = mapping->data();
  const uint64_t size = mapping->size();
  if (size < 8 + kTrailerBytes) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': file too small for a v2 trailer");
  }

  // Trailer: footer offset + version/magic echo, at the very end so a
  // truncated file can never present a plausible table.
  uint64_t footer_offset = 0;
  uint32_t echo_version = 0;
  uint32_t echo_magic = 0;
  std::memcpy(&footer_offset, base + size - 16, 8);
  std::memcpy(&echo_version, base + size - 8, 4);
  std::memcpy(&echo_magic, base + size - 4, 4);
  if (echo_magic != kSnapshotMagic ||
      echo_version != static_cast<uint32_t>(kSnapshotFormatV2)) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': truncated or corrupt v2 trailer at byte offset %llu",
        path.c_str(), static_cast<unsigned long long>(size - kTrailerBytes)));
  }
  if (footer_offset < 8 || footer_offset > size - kTrailerBytes) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': footer offset %llu outside the file", path.c_str(),
        static_cast<unsigned long long>(footer_offset)));
  }

  // Footer: SEND + section-offset table + content hash, parsed through a
  // bounds-checked view.
  util::BinaryReader footer(path, base + footer_offset,
                            size - kTrailerBytes - footer_offset,
                            footer_offset);
  IMR_RETURN_IF_ERROR(ExpectTag(&footer, kTagEnd, "footer"));
  const uint32_t section_count = footer.ReadU32();
  IMR_RETURN_IF_ERROR(footer.status());
  if (section_count < 6 || section_count > kMaxSections) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': implausible section count");
  }
  std::vector<SectionEntry> sections;
  sections.reserve(section_count);
  uint64_t previous_end = 8;
  for (uint32_t i = 0; i < section_count; ++i) {
    SectionEntry entry;
    entry.tag = footer.ReadU32();
    footer.ReadU32();  // reserved
    entry.tag_offset = footer.ReadU64();
    entry.payload_offset = footer.ReadU64();
    entry.payload_end = footer.ReadU64();
    IMR_RETURN_IF_ERROR(footer.status());
    if (entry.tag_offset < previous_end ||
        entry.payload_offset < entry.tag_offset + 4 ||
        entry.payload_end < entry.payload_offset ||
        entry.payload_end > footer_offset) {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': section %u has an out-of-bounds offset table "
          "entry",
          path.c_str(), i));
    }
    uint32_t inline_tag = 0;
    std::memcpy(&inline_tag, base + entry.tag_offset, 4);
    if (inline_tag != entry.tag) {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': section tag at byte offset %llu does not match "
          "the offset table (0x%08x vs 0x%08x)",
          path.c_str(), static_cast<unsigned long long>(entry.tag_offset),
          inline_tag, entry.tag));
    }
    previous_end = entry.payload_end;
    sections.push_back(entry);
  }
  uint64_t content_hash = footer.ReadU64();
  IMR_RETURN_IF_ERROR(footer.status());

  // Fixed order: the six required sections, then the optional tail.
  static constexpr uint32_t kRequired[] = {kTagManifest, kTagVocabulary,
                                           kTagRelations, kTagEntities,
                                           kTagEmbeddings, kTagParameters};
  for (size_t i = 0; i < 6; ++i) {
    if (sections[i].tag != kRequired[i]) {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': section %zu is 0x%08x, expected 0x%08x",
          path.c_str(), i, sections[i].tag, kRequired[i]));
    }
  }
  auto section_reader = [&](const SectionEntry& entry) {
    return util::BinaryReader(path, base + entry.payload_offset,
                              entry.payload_end - entry.payload_offset,
                              entry.payload_offset);
  };

  Snapshot snapshot;
  auto tables = std::make_shared<SnapshotTables>();
  {
    util::BinaryReader reader = section_reader(sections[0]);
    auto manifest = ReadManifest(&reader);
    IMR_RETURN_IF_ERROR(manifest.status());
    snapshot.manifest = std::move(*manifest);
  }
  {
    util::BinaryReader reader = section_reader(sections[1]);
    auto vocab = text::Vocabulary::ReadFrom(&reader);
    IMR_RETURN_IF_ERROR(vocab.status());
    tables->vocab = std::move(*vocab);
  }
  {
    util::BinaryReader reader = section_reader(sections[2]);
    IMR_RETURN_IF_ERROR(ReadRelationNames(&reader, snapshot.manifest, path,
                                          &tables->relation_names));
  }
  {
    util::BinaryReader reader = section_reader(sections[3]);
    IMR_RETURN_IF_ERROR(ReadEntityTable(&reader, path, &tables->entities));
  }
  snapshot.tables = std::move(tables);

  {
    // EMBD, zero-copy: parse the tiny shape prefix, then alias the aligned
    // matrix bytes straight out of the mapping.
    const SectionEntry& entry = sections[4];
    util::BinaryReader reader = section_reader(entry);
    const int num_vertices = static_cast<int>(reader.ReadU32());
    const int dim = static_cast<int>(reader.ReadU32());
    IMR_RETURN_IF_ERROR(reader.status());
    if (num_vertices <= 0 || dim <= 0 || dim > kMaxDim) {
      return util::InvalidArgument("snapshot '" + path +
                                   "': corrupt embedding shape");
    }
    const uint64_t data_offset = AlignUp(entry.payload_offset + 8,
                                         kSectionAlign);
    const uint64_t bytes = static_cast<uint64_t>(num_vertices) *
                           static_cast<uint64_t>(dim) * sizeof(float);
    if (data_offset > entry.payload_end ||
        bytes > entry.payload_end - data_offset) {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': embedding matrix overruns its section at byte "
          "offset %llu",
          path.c_str(), static_cast<unsigned long long>(data_offset)));
    }
    snapshot.embeddings = graph::EmbeddingStore::View(
        num_vertices, dim,
        reinterpret_cast<const float*>(base + data_offset), mapping);
    snapshot.layout.embd_data = data_offset;
    snapshot.layout.valid = true;
  }
  IMR_RETURN_IF_ERROR(ValidateCrossSections(snapshot, path));

  {
    util::BinaryReader reader = section_reader(sections[5]);
    IMR_RETURN_IF_ERROR(
        ReadModelParameters(&reader, snapshot.manifest, &snapshot.model));
  }

  for (size_t i = 6; i < sections.size(); ++i) {
    const SectionEntry& entry = sections[i];
    if (entry.tag == kTagQuantized) {
      util::BinaryReader reader = section_reader(entry);
      const int num_vertices = static_cast<int>(reader.ReadU32());
      const int dim = static_cast<int>(reader.ReadU32());
      IMR_RETURN_IF_ERROR(reader.status());
      if (num_vertices <= 0 || dim <= 0 || dim > kMaxDim) {
        return util::InvalidArgument("snapshot '" + path +
                                     "': corrupt quantized shape");
      }
      const uint64_t scales_offset = AlignUp(entry.payload_offset + 8,
                                             kSectionAlign);
      const uint64_t scale_bytes =
          static_cast<uint64_t>(num_vertices) * sizeof(float);
      const uint64_t data_offset =
          AlignUp(scales_offset + scale_bytes, kSectionAlign);
      const uint64_t data_bytes = static_cast<uint64_t>(num_vertices) *
                                  static_cast<uint64_t>(dim);
      if (scales_offset > entry.payload_end ||
          scale_bytes > entry.payload_end - scales_offset ||
          data_offset > entry.payload_end ||
          data_bytes > entry.payload_end - data_offset) {
        return util::InvalidArgument(util::StrFormat(
            "snapshot '%s': quantized matrix overruns its section at byte "
            "offset %llu",
            path.c_str(), static_cast<unsigned long long>(scales_offset)));
      }
      graph::QuantizedEmbeddingStore quantized =
          graph::QuantizedEmbeddingStore::View(
              num_vertices, dim,
              reinterpret_cast<const int8_t*>(base + data_offset),
              reinterpret_cast<const float*>(base + scales_offset), mapping);
      IMR_RETURN_IF_ERROR(
          ValidateQuantizedShape(quantized, snapshot.embeddings, path));
      snapshot.quantized_embeddings = std::move(quantized);
      snapshot.layout.qemb_scales = scales_offset;
      snapshot.layout.qemb_data = data_offset;
    } else if (entry.tag == kTagAnn) {
      util::BinaryReader reader = section_reader(entry);
      auto knn = re::KnnPredictor::ReadFrom(&reader, snapshot.embeddings);
      IMR_RETURN_IF_ERROR(knn.status());
      if (knn->num_relations() !=
          snapshot.manifest.model_config.num_relations) {
        return util::InvalidArgument(util::StrFormat(
            "snapshot '%s': kNN section has %d relations, manifest "
            "declares %d",
            path.c_str(), knn->num_relations(),
            snapshot.manifest.model_config.num_relations));
      }
      snapshot.knn =
          std::make_shared<const re::KnnPredictor>(std::move(*knn));
    } else {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': unknown optional section tag 0x%08x", path.c_str(),
          entry.tag));
    }
  }

  snapshot.mapping = std::move(mapping);
  snapshot.content_hash = content_hash;
  snapshot.format_version = kSnapshotFormatV2;
  return snapshot;
}

}  // namespace

util::Status SaveSnapshot(const re::PaModel& model,
                          const text::Vocabulary& vocab,
                          const graph::EmbeddingStore& embeddings,
                          const std::vector<std::string>& relation_names,
                          const std::vector<EntityRecord>& entities,
                          const re::BagDatasetOptions& bag_options,
                          uint64_t trained_steps, const std::string& notes,
                          const std::string& path,
                          const graph::QuantizedEmbeddingStore* quantized,
                          const re::KnnPredictor* knn, int format_version) {
  if (format_version != kSnapshotFormatV1 &&
      format_version != kSnapshotFormatV2) {
    return util::InvalidArgument("snapshot: unknown format version");
  }
  const re::PaModelConfig& config = model.config();
  // Catch inconsistent bundles at save time: a snapshot that cannot pass
  // its own load-time validation must never reach disk.
  if (!vocab.frozen() || vocab.size() != config.encoder_config.vocab_size) {
    return util::InvalidArgument(
        "snapshot: vocabulary does not match the model's vocab_size");
  }
  if (static_cast<int>(relation_names.size()) != config.num_relations) {
    return util::InvalidArgument(
        "snapshot: relation name count != num_relations");
  }
  if (config.use_mutual_relation &&
      embeddings.dim() != config.mutual_relation_dim) {
    return util::InvalidArgument(
        "snapshot: embedding dim != mutual_relation_dim");
  }
  if (!entities.empty() &&
      static_cast<int>(entities.size()) != embeddings.num_vertices()) {
    return util::InvalidArgument(
        "snapshot: entity table size != embedding vertex count");
  }
  if (quantized != nullptr &&
      (quantized->num_vertices() != embeddings.num_vertices() ||
       quantized->dim() != embeddings.dim())) {
    return util::InvalidArgument(
        "snapshot: quantized embedding shape != fp32 embedding shape");
  }
  if (knn != nullptr && knn->dim() != embeddings.dim()) {
    return util::InvalidArgument(
        "snapshot: kNN predictor dim != embedding dim");
  }
  if (knn != nullptr && knn->num_relations() != config.num_relations) {
    return util::InvalidArgument(
        "snapshot: kNN predictor relation count != num_relations");
  }

  util::BinaryWriter writer(path, kSnapshotMagic,
                            static_cast<uint32_t>(format_version));
  IMR_RETURN_IF_ERROR(writer.status());
  const bool v2 = format_version == kSnapshotFormatV2;
  if (v2) writer.StartHashing();

  // v2 records every section in a trailing offset table; v1 just streams.
  std::vector<SectionEntry> table;
  auto begin_section = [&](uint32_t tag) {
    SectionEntry entry;
    entry.tag = tag;
    entry.tag_offset = writer.offset();
    writer.WriteU32(tag);
    if (v2) writer.PadTo(kSectionAlign);
    entry.payload_offset = writer.offset();
    table.push_back(entry);
  };
  auto end_section = [&] { table.back().payload_end = writer.offset(); };

  SnapshotManifest manifest;
  manifest.model_config = config;
  manifest.bag_options = bag_options;
  manifest.trained_steps = trained_steps;
  manifest.notes = notes;

  begin_section(kTagManifest);
  WriteManifest(&writer, manifest);
  end_section();

  begin_section(kTagVocabulary);
  IMR_RETURN_IF_ERROR(vocab.WriteTo(&writer));
  end_section();

  begin_section(kTagRelations);
  writer.WriteU64(relation_names.size());
  for (const std::string& name : relation_names) writer.WriteString(name);
  end_section();

  begin_section(kTagEntities);
  writer.WriteU64(entities.size());
  for (const EntityRecord& entity : entities) {
    writer.WriteString(entity.name);
    writer.WriteIntVector(entity.type_ids);
  }
  end_section();

  begin_section(kTagEmbeddings);
  if (v2) {
    // Shape prefix, then the matrix re-aligned to 64 bytes so the reader
    // can alias it in place.
    writer.WriteU32(static_cast<uint32_t>(embeddings.num_vertices()));
    writer.WriteU32(static_cast<uint32_t>(embeddings.dim()));
    writer.PadTo(kSectionAlign);
    writer.WriteRawBytes(embeddings.raw(),
                         embeddings.value_count() * sizeof(float));
  } else {
    embeddings.WriteTo(&writer);
  }
  end_section();

  begin_section(kTagParameters);
  model.WriteParameters(&writer);
  end_section();

  if (quantized != nullptr) {
    begin_section(kTagQuantized);
    if (v2) {
      writer.WriteU32(static_cast<uint32_t>(quantized->num_vertices()));
      writer.WriteU32(static_cast<uint32_t>(quantized->dim()));
      writer.PadTo(kSectionAlign);
      writer.WriteRawBytes(
          quantized->raw_scales(),
          static_cast<size_t>(quantized->num_vertices()) * sizeof(float));
      writer.PadTo(kSectionAlign);
      writer.WriteRawBytes(quantized->raw(),
                           static_cast<size_t>(quantized->num_vertices()) *
                               static_cast<size_t>(quantized->dim()));
    } else {
      quantized->WriteTo(&writer);
    }
    end_section();
  }

  if (knn != nullptr) {
    begin_section(kTagAnn);
    knn->WriteTo(&writer);
    end_section();
  }

  if (!v2) {
    writer.WriteU32(kTagEnd);
    return writer.Close();
  }

  // Footer + trailer. The content hash covers [8, footer) — every section
  // byte including padding — and is the identity deltas chain on.
  writer.PadTo(8);
  const uint64_t footer_offset = writer.offset();
  writer.StopHashing();
  const uint64_t content_hash = writer.hash();
  writer.WriteU32(kTagEnd);
  writer.WriteU32(static_cast<uint32_t>(table.size()));
  for (const SectionEntry& entry : table) {
    writer.WriteU32(entry.tag);
    writer.WriteU32(0);  // reserved
    writer.WriteU64(entry.tag_offset);
    writer.WriteU64(entry.payload_offset);
    writer.WriteU64(entry.payload_end);
  }
  writer.WriteU64(content_hash);
  writer.WriteU64(footer_offset);
  writer.WriteU32(static_cast<uint32_t>(kSnapshotFormatV2));
  writer.WriteU32(kSnapshotMagic);
  return writer.Close();
}

util::Status SaveSnapshot(const re::PaModel& model,
                          const text::Vocabulary& vocab,
                          const graph::EmbeddingStore& embeddings,
                          const kg::KnowledgeGraph& graph,
                          const re::BagDatasetOptions& bag_options,
                          uint64_t trained_steps, const std::string& notes,
                          const std::string& path,
                          const graph::QuantizedEmbeddingStore* quantized,
                          const re::KnnPredictor* knn, int format_version) {
  std::vector<std::string> relation_names;
  relation_names.reserve(static_cast<size_t>(graph.num_relations()));
  for (const kg::RelationSchema& schema : graph.relations())
    relation_names.push_back(schema.name);
  std::vector<EntityRecord> entities;
  entities.reserve(static_cast<size_t>(graph.num_entities()));
  for (const kg::Entity& entity : graph.entities())
    entities.push_back({entity.name, entity.type_ids});
  return SaveSnapshot(model, vocab, embeddings, relation_names, entities,
                      bag_options, trained_steps, notes, path, quantized,
                      knn, format_version);
}

util::StatusOr<Snapshot> LoadSnapshot(const std::string& path) {
  auto mapping = util::MmapFile::Open(path);
  IMR_RETURN_IF_ERROR(mapping.status());
  if ((*mapping)->size() < 8) {
    return util::InvalidArgument(util::StrFormat(
        "bad magic in '%s': file too small for a header", path.c_str()));
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  std::memcpy(&magic, (*mapping)->data(), 4);
  std::memcpy(&version, (*mapping)->data() + 4, 4);
  if (magic != kSnapshotMagic) {
    return util::InvalidArgument(
        util::StrFormat("bad magic in '%s': file has 0x%08x, expected 0x%08x",
                        path.c_str(), magic, kSnapshotMagic));
  }
  if (version == static_cast<uint32_t>(kSnapshotFormatV2)) {
    return LoadSnapshotV2(std::move(*mapping), path);
  }
  if (version == static_cast<uint32_t>(kSnapshotFormatV1)) {
    // Sanctioned parse-and-copy fallback; the mapping is released and the
    // classic streamed reader takes over.
    return LoadSnapshotV1(path);
  }
  return util::InvalidArgument(util::StrFormat(
      "unsupported version in '%s': file has %u, expected 1 or 2",
      path.c_str(), version));
}

}  // namespace imr::serve
