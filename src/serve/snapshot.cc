#include "serve/snapshot.h"

#include <utility>

#include "util/rng.h"
#include "util/serialization.h"
#include "util/string_util.h"

namespace imr::serve {

namespace {

constexpr uint32_t kSnapshotMagic = 0x494D5253;  // "IMRS"
constexpr uint32_t kSnapshotVersion = 1;

// Section tags, written before each section so a reader that drifts out of
// sync (or a file truncated on a boundary) fails on the next tag instead of
// interpreting unrelated bytes as lengths.
constexpr uint32_t kTagManifest = 0x4D414E49;    // "MANI"
constexpr uint32_t kTagVocabulary = 0x564F4342;  // "VOCB"
constexpr uint32_t kTagRelations = 0x52454C53;   // "RELS"
constexpr uint32_t kTagEntities = 0x454E5453;    // "ENTS"
constexpr uint32_t kTagEmbeddings = 0x454D4244;  // "EMBD"
constexpr uint32_t kTagParameters = 0x5041524D;  // "PARM"
constexpr uint32_t kTagQuantized = 0x51454D42;   // "QEMB" (optional)
constexpr uint32_t kTagAnn = 0x414E4E49;         // "ANNI" (optional)
constexpr uint32_t kTagEnd = 0x53454E44;         // "SEND"

bool ValidEncoder(const std::string& kind) {
  return kind == "pcnn" || kind == "cnn" || kind == "gru" || kind == "bgwa";
}

util::Status ExpectTag(util::BinaryReader* reader, uint32_t tag,
                       const char* section) {
  const uint64_t at = reader->offset();
  const uint32_t found = reader->ReadU32();
  IMR_RETURN_IF_ERROR(reader->status());
  if (found != tag) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': expected %s section tag at byte offset %llu, found "
        "0x%08x",
        reader->path().c_str(), section,
        static_cast<unsigned long long>(at), found));
  }
  return util::OkStatus();
}

void WriteManifest(util::BinaryWriter* writer,
                   const SnapshotManifest& manifest) {
  const re::PaModelConfig& m = manifest.model_config;
  writer->WriteU32(static_cast<uint32_t>(m.num_relations));
  writer->WriteString(m.encoder);
  writer->WriteU32(static_cast<uint32_t>(m.aggregation));
  writer->WriteU32(m.use_mutual_relation ? 1 : 0);
  writer->WriteU32(m.use_entity_type ? 1 : 0);
  writer->WriteU32(static_cast<uint32_t>(m.type_dim));
  writer->WriteU32(static_cast<uint32_t>(m.mutual_relation_dim));
  writer->WriteFloat(m.auxiliary_re_loss);
  const nn::EncoderConfig& e = m.encoder_config;
  writer->WriteU32(static_cast<uint32_t>(e.vocab_size));
  writer->WriteU32(static_cast<uint32_t>(e.word_dim));
  writer->WriteU32(static_cast<uint32_t>(e.position_dim));
  writer->WriteU32(static_cast<uint32_t>(e.max_position));
  writer->WriteU32(static_cast<uint32_t>(e.window));
  writer->WriteU32(static_cast<uint32_t>(e.filters));
  writer->WriteFloat(e.dropout);
  writer->WriteFloat(e.word_dropout);
  const re::BagDatasetOptions& b = manifest.bag_options;
  writer->WriteU32(static_cast<uint32_t>(b.max_sentence_length));
  writer->WriteU32(static_cast<uint32_t>(b.max_position));
  writer->WriteU32(static_cast<uint32_t>(b.vocab_min_count));
  writer->WriteU32(b.blind_entities ? 1 : 0);
  writer->WriteU64(manifest.trained_steps);
  writer->WriteString(manifest.notes);
}

util::StatusOr<SnapshotManifest> ReadManifest(util::BinaryReader* reader) {
  SnapshotManifest manifest;
  re::PaModelConfig& m = manifest.model_config;
  m.num_relations = static_cast<int>(reader->ReadU32());
  m.encoder = reader->ReadString();
  const uint32_t aggregation = reader->ReadU32();
  m.use_mutual_relation = reader->ReadU32() != 0;
  m.use_entity_type = reader->ReadU32() != 0;
  m.type_dim = static_cast<int>(reader->ReadU32());
  m.mutual_relation_dim = static_cast<int>(reader->ReadU32());
  m.auxiliary_re_loss = reader->ReadFloat();
  nn::EncoderConfig& e = m.encoder_config;
  e.vocab_size = static_cast<int>(reader->ReadU32());
  e.word_dim = static_cast<int>(reader->ReadU32());
  e.position_dim = static_cast<int>(reader->ReadU32());
  e.max_position = static_cast<int>(reader->ReadU32());
  e.window = static_cast<int>(reader->ReadU32());
  e.filters = static_cast<int>(reader->ReadU32());
  e.dropout = reader->ReadFloat();
  e.word_dropout = reader->ReadFloat();
  re::BagDatasetOptions& b = manifest.bag_options;
  b.max_sentence_length = static_cast<int>(reader->ReadU32());
  b.max_position = static_cast<int>(reader->ReadU32());
  b.vocab_min_count = static_cast<int>(reader->ReadU32());
  b.blind_entities = reader->ReadU32() != 0;
  manifest.trained_steps = reader->ReadU64();
  manifest.notes = reader->ReadString();
  IMR_RETURN_IF_ERROR(reader->status());

  // Reject anything the model constructor would IMR_CHECK-crash on: the
  // whole point of the manifest is that corrupt input fails with a Status.
  const std::string& path = reader->path();
  if (m.num_relations < 2) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': manifest num_relations < 2");
  }
  if (!ValidEncoder(m.encoder)) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': unknown encoder '" + m.encoder + "'");
  }
  if (aggregation > static_cast<uint32_t>(re::Aggregation::kMax)) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': invalid aggregation id");
  }
  m.aggregation = static_cast<re::Aggregation>(aggregation);
  if (e.vocab_size <= 0 || e.word_dim <= 0 || e.position_dim <= 0 ||
      e.max_position <= 0 || e.window <= 0 || e.filters <= 0) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': non-positive encoder dimension");
  }
  if (!(e.dropout >= 0.0f && e.dropout < 1.0f) ||
      !(e.word_dropout >= 0.0f && e.word_dropout < 1.0f)) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': dropout outside [0, 1)");
  }
  if (m.use_mutual_relation && m.mutual_relation_dim <= 0) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': non-positive mutual_relation_dim");
  }
  if (m.use_entity_type && m.type_dim <= 0) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': non-positive type_dim");
  }
  if (b.max_sentence_length <= 0 || b.max_position <= 0) {
    return util::InvalidArgument("snapshot '" + path +
                                 "': non-positive bag option");
  }
  return manifest;
}

}  // namespace

util::Status SaveSnapshot(const re::PaModel& model,
                          const text::Vocabulary& vocab,
                          const graph::EmbeddingStore& embeddings,
                          const std::vector<std::string>& relation_names,
                          const std::vector<EntityRecord>& entities,
                          const re::BagDatasetOptions& bag_options,
                          uint64_t trained_steps, const std::string& notes,
                          const std::string& path,
                          const graph::QuantizedEmbeddingStore* quantized,
                          const re::KnnPredictor* knn) {
  const re::PaModelConfig& config = model.config();
  // Catch inconsistent bundles at save time: a snapshot that cannot pass
  // its own load-time validation must never reach disk.
  if (!vocab.frozen() || vocab.size() != config.encoder_config.vocab_size) {
    return util::InvalidArgument(
        "snapshot: vocabulary does not match the model's vocab_size");
  }
  if (static_cast<int>(relation_names.size()) != config.num_relations) {
    return util::InvalidArgument(
        "snapshot: relation name count != num_relations");
  }
  if (config.use_mutual_relation &&
      embeddings.dim() != config.mutual_relation_dim) {
    return util::InvalidArgument(
        "snapshot: embedding dim != mutual_relation_dim");
  }
  if (!entities.empty() &&
      static_cast<int>(entities.size()) != embeddings.num_vertices()) {
    return util::InvalidArgument(
        "snapshot: entity table size != embedding vertex count");
  }
  if (quantized != nullptr &&
      (quantized->num_vertices() != embeddings.num_vertices() ||
       quantized->dim() != embeddings.dim())) {
    return util::InvalidArgument(
        "snapshot: quantized embedding shape != fp32 embedding shape");
  }
  if (knn != nullptr && knn->dim() != embeddings.dim()) {
    return util::InvalidArgument(
        "snapshot: kNN predictor dim != embedding dim");
  }
  if (knn != nullptr && knn->num_relations() != config.num_relations) {
    return util::InvalidArgument(
        "snapshot: kNN predictor relation count != num_relations");
  }

  util::BinaryWriter writer(path, kSnapshotMagic, kSnapshotVersion);
  IMR_RETURN_IF_ERROR(writer.status());

  writer.WriteU32(kTagManifest);
  SnapshotManifest manifest;
  manifest.model_config = config;
  manifest.bag_options = bag_options;
  manifest.trained_steps = trained_steps;
  manifest.notes = notes;
  WriteManifest(&writer, manifest);

  writer.WriteU32(kTagVocabulary);
  IMR_RETURN_IF_ERROR(vocab.WriteTo(&writer));

  writer.WriteU32(kTagRelations);
  writer.WriteU64(relation_names.size());
  for (const std::string& name : relation_names) writer.WriteString(name);

  writer.WriteU32(kTagEntities);
  writer.WriteU64(entities.size());
  for (const EntityRecord& entity : entities) {
    writer.WriteString(entity.name);
    writer.WriteIntVector(entity.type_ids);
  }

  writer.WriteU32(kTagEmbeddings);
  embeddings.WriteTo(&writer);

  writer.WriteU32(kTagParameters);
  model.WriteParameters(&writer);

  if (quantized != nullptr) {
    writer.WriteU32(kTagQuantized);
    quantized->WriteTo(&writer);
  }

  if (knn != nullptr) {
    writer.WriteU32(kTagAnn);
    knn->WriteTo(&writer);
  }

  writer.WriteU32(kTagEnd);
  return writer.Close();
}

util::Status SaveSnapshot(const re::PaModel& model,
                          const text::Vocabulary& vocab,
                          const graph::EmbeddingStore& embeddings,
                          const kg::KnowledgeGraph& graph,
                          const re::BagDatasetOptions& bag_options,
                          uint64_t trained_steps, const std::string& notes,
                          const std::string& path,
                          const graph::QuantizedEmbeddingStore* quantized,
                          const re::KnnPredictor* knn) {
  std::vector<std::string> relation_names;
  relation_names.reserve(static_cast<size_t>(graph.num_relations()));
  for (const kg::RelationSchema& schema : graph.relations())
    relation_names.push_back(schema.name);
  std::vector<EntityRecord> entities;
  entities.reserve(static_cast<size_t>(graph.num_entities()));
  for (const kg::Entity& entity : graph.entities())
    entities.push_back({entity.name, entity.type_ids});
  return SaveSnapshot(model, vocab, embeddings, relation_names, entities,
                      bag_options, trained_steps, notes, path, quantized,
                      knn);
}

util::StatusOr<Snapshot> LoadSnapshot(const std::string& path) {
  util::BinaryReader reader(path, kSnapshotMagic, kSnapshotVersion);
  IMR_RETURN_IF_ERROR(reader.status());

  Snapshot snapshot;
  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagManifest, "manifest"));
  {
    auto manifest = ReadManifest(&reader);
    IMR_RETURN_IF_ERROR(manifest.status());
    snapshot.manifest = std::move(*manifest);
  }

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagVocabulary, "vocabulary"));
  {
    auto vocab = text::Vocabulary::ReadFrom(&reader);
    IMR_RETURN_IF_ERROR(vocab.status());
    snapshot.vocab = std::move(*vocab);
  }
  if (snapshot.vocab.size() !=
      snapshot.manifest.model_config.encoder_config.vocab_size) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': vocabulary has %d words, manifest declares %d",
        path.c_str(), snapshot.vocab.size(),
        snapshot.manifest.model_config.encoder_config.vocab_size));
  }

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagRelations, "relations"));
  {
    const uint64_t count = reader.ReadU64();
    IMR_RETURN_IF_ERROR(reader.status());
    if (count !=
        static_cast<uint64_t>(snapshot.manifest.model_config.num_relations)) {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': %llu relation names, manifest declares %d",
          path.c_str(), static_cast<unsigned long long>(count),
          snapshot.manifest.model_config.num_relations));
    }
    snapshot.relation_names.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      snapshot.relation_names.push_back(reader.ReadString());
      IMR_RETURN_IF_ERROR(reader.status());
    }
  }

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagEntities, "entities"));
  {
    const uint64_t count = reader.ReadU64();
    IMR_RETURN_IF_ERROR(reader.status());
    if (count > (1ULL << 32)) {
      return util::InvalidArgument("snapshot '" + path +
                                   "': entity table too large");
    }
    snapshot.entities.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      EntityRecord entity;
      entity.name = reader.ReadString();
      entity.type_ids = reader.ReadIntVector();
      IMR_RETURN_IF_ERROR(reader.status());
      snapshot.entities.push_back(std::move(entity));
    }
  }

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagEmbeddings, "embeddings"));
  {
    auto embeddings = graph::EmbeddingStore::ReadFrom(&reader);
    IMR_RETURN_IF_ERROR(embeddings.status());
    snapshot.embeddings = std::move(*embeddings);
  }
  if (snapshot.manifest.model_config.use_mutual_relation &&
      snapshot.embeddings.dim() !=
          snapshot.manifest.model_config.mutual_relation_dim) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': embedding dim %d != mutual_relation_dim %d",
        path.c_str(), snapshot.embeddings.dim(),
        snapshot.manifest.model_config.mutual_relation_dim));
  }
  if (!snapshot.entities.empty() &&
      static_cast<int>(snapshot.entities.size()) !=
          snapshot.embeddings.num_vertices()) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': entity table has %zu rows, embeddings have %d "
        "vertices",
        path.c_str(), snapshot.entities.size(),
        snapshot.embeddings.num_vertices()));
  }

  IMR_RETURN_IF_ERROR(ExpectTag(&reader, kTagParameters, "parameters"));
  {
    // The initializer draws are overwritten entirely by ReadParameters, so
    // the seed is arbitrary; validation happens against the registry the
    // manifest-built skeleton produces.
    util::Rng init_rng(0x5EED);
    snapshot.model = std::make_unique<re::PaModel>(
        snapshot.manifest.model_config, &init_rng);
    IMR_RETURN_IF_ERROR(snapshot.model->ReadParameters(&reader));
  }
  snapshot.model->SetTraining(false);

  // The tail is a chain of optional sections in fixed order — [QEMB]
  // [ANNI] — closed by SEND. Pre-quantization files hit SEND immediately;
  // each reader branch consumes its section and reads the next tag.
  uint64_t tail_at = reader.offset();
  uint32_t tail_tag = reader.ReadU32();
  IMR_RETURN_IF_ERROR(reader.status());
  if (tail_tag == kTagQuantized) {
    auto quantized = graph::QuantizedEmbeddingStore::ReadFrom(&reader);
    IMR_RETURN_IF_ERROR(quantized.status());
    if (quantized->num_vertices() != snapshot.embeddings.num_vertices() ||
        quantized->dim() != snapshot.embeddings.dim()) {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': quantized embeddings [%d x %d] do not match fp32 "
          "embeddings [%d x %d]",
          path.c_str(), quantized->num_vertices(), quantized->dim(),
          snapshot.embeddings.num_vertices(), snapshot.embeddings.dim()));
    }
    snapshot.quantized_embeddings = std::move(*quantized);
    tail_at = reader.offset();
    tail_tag = reader.ReadU32();
    IMR_RETURN_IF_ERROR(reader.status());
  }
  if (tail_tag == kTagAnn) {
    auto knn = re::KnnPredictor::ReadFrom(&reader, snapshot.embeddings);
    IMR_RETURN_IF_ERROR(knn.status());
    if (knn->num_relations() !=
        snapshot.manifest.model_config.num_relations) {
      return util::InvalidArgument(util::StrFormat(
          "snapshot '%s': kNN section has %d relations, manifest declares %d",
          path.c_str(), knn->num_relations(),
          snapshot.manifest.model_config.num_relations));
    }
    snapshot.knn =
        std::make_shared<const re::KnnPredictor>(std::move(*knn));
    tail_at = reader.offset();
    tail_tag = reader.ReadU32();
    IMR_RETURN_IF_ERROR(reader.status());
  }
  if (tail_tag != kTagEnd) {
    return util::InvalidArgument(util::StrFormat(
        "snapshot '%s': expected optional-section or end sentinel tag at "
        "byte offset %llu, found 0x%08x",
        path.c_str(), static_cast<unsigned long long>(tail_at), tail_tag));
  }
  return snapshot;
}

}  // namespace imr::serve
