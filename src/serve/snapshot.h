// Versioned on-disk model snapshots: everything needed to stand a trained
// PA-* pipeline back up in a fresh process, in one file.
//
// A snapshot is a single magic+version-headed binary (util::BinaryWriter
// framing) with tagged sections in fixed order:
//
//   MANI  manifest: PaModelConfig (incl. EncoderConfig), BagDatasetOptions,
//         trained-step count, free-form notes
//   VOCB  frozen word vocabulary (ids preserved exactly)
//   RELS  relation names, index == relation id (0 = NA)
//   ENTS  entity table: name + FIGER type ids per entity, index == graph
//         vertex id (may be empty when serving by raw ids only)
//   EMBD  graph::EmbeddingStore (the mutual-relation source)
//   PARM  model parameters (name + values, registry order)
//   QEMB  OPTIONAL int8 graph::QuantizedEmbeddingStore for the quantized
//         serving path; readers branch on the tag after PARM, so files
//         written without it (all pre-quantization snapshots) load
//         unchanged and the version stays 1
//   ANNI  OPTIONAL re::KnnPredictor — memorised training pairs plus the
//         learned IVF structure for kNN-interpolated long-tail serving.
//         Like QEMB, readers branch on the tag, so v1 files without it
//         (and v1 readers that predate it) are unaffected
//   SEND  end sentinel — detects files truncated on a section boundary
//
// Every section is validated on load (tag, counts, cross-section shape
// consistency, parameter names/shapes); any mismatch returns a non-OK
// Status naming the file and byte offset instead of crashing or silently
// loading garbage. The format version bumps on any layout change; readers
// reject other versions outright (no silent migration).
#ifndef IMR_SERVE_SNAPSHOT_H_
#define IMR_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/embedding_store.h"
#include "kg/knowledge_graph.h"
#include "re/bag_dataset.h"
#include "re/config.h"
#include "re/knn_predictor.h"
#include "re/pa_model.h"
#include "text/vocab.h"
#include "util/status.h"

namespace imr::serve {

/// Everything about a snapshot except the tensors: enough to rebuild the
/// model skeleton and the input featurization exactly as trained.
struct SnapshotManifest {
  re::PaModelConfig model_config;
  re::BagDatasetOptions bag_options;
  uint64_t trained_steps = 0;  // informational (optimizer steps or epochs)
  std::string notes;
};

/// One row of the entity table; index in the table == embedding vertex id.
struct EntityRecord {
  std::string name;
  std::vector<int> type_ids;
};

/// A fully materialized snapshot: the model is constructed, loaded, and
/// switched to eval mode.
struct Snapshot {
  SnapshotManifest manifest;
  text::Vocabulary vocab;
  std::vector<std::string> relation_names;
  std::vector<EntityRecord> entities;
  graph::EmbeddingStore embeddings;
  /// Empty unless the file carried a QEMB section.
  graph::QuantizedEmbeddingStore quantized_embeddings;
  /// Null unless the file carried an ANNI section. Shared (not unique) so
  /// every serve replica of a ModelState can hold the same immutable
  /// predictor across the RCU swap.
  std::shared_ptr<const re::KnnPredictor> knn;
  std::unique_ptr<re::PaModel> model;
};

/// Writes a snapshot of `model` plus its featurization state. `entities`
/// may be empty (serving then requires raw entity ids and explicit types);
/// when non-empty its size must equal embeddings.num_vertices(). Passing
/// `quantized` (shape-matched to `embeddings`) appends the optional QEMB
/// section so the file also carries the int8 serving weights. Passing
/// `knn` (dim- and relation-matched) appends the optional ANNI section so
/// the serve tier can kNN-interpolate long-tail predictions.
[[nodiscard]] util::Status SaveSnapshot(
    const re::PaModel& model, const text::Vocabulary& vocab,
    const graph::EmbeddingStore& embeddings,
    const std::vector<std::string>& relation_names,
    const std::vector<EntityRecord>& entities,
    const re::BagDatasetOptions& bag_options, uint64_t trained_steps,
    const std::string& notes, const std::string& path,
    const graph::QuantizedEmbeddingStore* quantized = nullptr,
    const re::KnnPredictor* knn = nullptr);

/// Convenience overload that pulls relation names and the entity table
/// (names + type ids) from a knowledge graph.
[[nodiscard]] util::Status SaveSnapshot(
    const re::PaModel& model, const text::Vocabulary& vocab,
    const graph::EmbeddingStore& embeddings, const kg::KnowledgeGraph& graph,
    const re::BagDatasetOptions& bag_options, uint64_t trained_steps,
    const std::string& notes, const std::string& path,
    const graph::QuantizedEmbeddingStore* quantized = nullptr,
    const re::KnnPredictor* knn = nullptr);

/// Loads and validates a snapshot; the returned model reproduces the saved
/// model's inference outputs bit-for-bit.
[[nodiscard]] util::StatusOr<Snapshot> LoadSnapshot(const std::string& path);

}  // namespace imr::serve

#endif  // IMR_SERVE_SNAPSHOT_H_
