// Versioned on-disk model snapshots: everything needed to stand a trained
// PA-* pipeline back up in a fresh process, in one file.
//
// Two format versions share the magic and the section vocabulary
// (DESIGN.md §14 has the byte-level diagrams):
//
//   v1 — streamed: tagged sections in fixed order, parsed front to back
//        with util::BinaryReader and copied into owned storage. Still
//        written on request and always readable (the sanctioned
//        parse-and-copy fallback).
//   v2 — zero-copy: same sections, but every section payload is 64-byte
//        aligned, the bulk arrays (EMBD floats, QEMB scales/int8) are
//        additionally 64-byte aligned inside their payloads, and a footer
//        carries a section-offset table plus an FNV-1a content hash. The
//        reader mmaps the file (util::MmapFile), validates the
//        bounds-checked footer, parses the small sections in place through
//        view-mode BinaryReaders, and hands the embedding stores
//        *borrowed* views of the mapped bytes — open is O(header) with
//        lazy page faulting, instead of O(model) parse-and-copy.
//
// Section order (tags precede payloads in both versions):
//
//   MANI  manifest: PaModelConfig (incl. EncoderConfig), BagDatasetOptions,
//         trained-step count, free-form notes
//   VOCB  frozen word vocabulary (ids preserved exactly)
//   RELS  relation names, index == relation id (0 = NA)
//   ENTS  entity table: name + FIGER type ids per entity, index == graph
//         vertex id (may be empty when serving by raw ids only)
//   EMBD  graph::EmbeddingStore (the mutual-relation source)
//   PARM  model parameters (name + values, registry order)
//   QEMB  OPTIONAL int8 graph::QuantizedEmbeddingStore for the quantized
//         serving path
//   ANNI  OPTIONAL re::KnnPredictor — memorised training pairs plus the
//         learned IVF structure for kNN-interpolated long-tail serving
//   SEND  end sentinel (v1) / footer opener (v2)
//
// Every section is validated on load (tag, counts, cross-section shape
// consistency, parameter names/shapes); any mismatch returns a non-OK
// Status naming the file and byte offset instead of crashing or silently
// loading garbage. Readers reject unknown versions outright; a v2 file
// presented to a v1-only reader fails on the version field with a clean
// Status (the snapshot-compat CI stage asserts this).
#ifndef IMR_SERVE_SNAPSHOT_H_
#define IMR_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/embedding_store.h"
#include "kg/knowledge_graph.h"
#include "re/bag_dataset.h"
#include "re/config.h"
#include "re/knn_predictor.h"
#include "re/pa_model.h"
#include "text/vocab.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace imr::serve {

inline constexpr int kSnapshotFormatV1 = 1;
inline constexpr int kSnapshotFormatV2 = 2;

/// Everything about a snapshot except the tensors: enough to rebuild the
/// model skeleton and the input featurization exactly as trained.
struct SnapshotManifest {
  re::PaModelConfig model_config;
  re::BagDatasetOptions bag_options;
  uint64_t trained_steps = 0;  // informational (optimizer steps or epochs)
  std::string notes;
};

/// One row of the entity table; index in the table == embedding vertex id.
struct EntityRecord {
  std::string name;
  std::vector<int> type_ids;
};

/// The lookup tables (vocabulary, relation names, entity table) bundled
/// behind one shared, immutable handle: an IMRD delta generation reuses its
/// base's tables by bumping a refcount instead of copying O(vocab)
/// strings — part of keeping delta apply O(touched rows).
struct SnapshotTables {
  text::Vocabulary vocab;
  std::vector<std::string> relation_names;
  std::vector<EntityRecord> entities;
};

/// Byte offsets of the zero-copy bulk arrays inside a v2 mapping, recorded
/// at load so ApplyDelta can patch touched rows into a copy-on-write clone
/// without re-parsing the file.
struct SnapshotLayout {
  bool valid = false;
  uint64_t embd_data = 0;    // first float of the [nv x dim] fp32 matrix
  uint64_t qemb_scales = 0;  // first float of the per-row scales (QEMB only)
  uint64_t qemb_data = 0;    // first int8 of the [nv x dim] matrix
};

/// A fully materialized snapshot: the model is constructed, loaded, and
/// switched to eval mode.
struct Snapshot {
  SnapshotManifest manifest;
  /// Never null; shared with delta generations derived from this snapshot.
  std::shared_ptr<const SnapshotTables> tables =
      std::make_shared<SnapshotTables>();
  /// Owned (v1) or borrowing `mapping` (v2 zero-copy).
  graph::EmbeddingStore embeddings;
  /// Empty unless the file carried a QEMB section.
  graph::QuantizedEmbeddingStore quantized_embeddings;
  /// Null unless the file carried an ANNI section. Shared (not unique) so
  /// every serve replica of a ModelState can hold the same immutable
  /// predictor across the RCU swap.
  std::shared_ptr<const re::KnnPredictor> knn;
  std::unique_ptr<re::PaModel> model;
  /// v2 only: the mapping the embedding stores borrow from. Held shared so
  /// the mapped pages survive file unlink/replace until the last borrower
  /// (serving generation) drops its reference.
  std::shared_ptr<const util::MmapFile> mapping;
  SnapshotLayout layout;
  /// FNV-1a identity of the snapshot contents (v2 footer; deltas chain on
  /// it). 0 for v1 files, which carry no hash.
  uint64_t content_hash = 0;
  int format_version = kSnapshotFormatV1;

  const text::Vocabulary& vocab() const { return tables->vocab; }
  const std::vector<std::string>& relation_names() const {
    return tables->relation_names;
  }
  const std::vector<EntityRecord>& entities() const {
    return tables->entities;
  }
};

/// Writes a snapshot of `model` plus its featurization state. `entities`
/// may be empty (serving then requires raw entity ids and explicit types);
/// when non-empty its size must equal embeddings.num_vertices(). Passing
/// `quantized` (shape-matched to `embeddings`) appends the optional QEMB
/// section so the file also carries the int8 serving weights. Passing
/// `knn` (dim- and relation-matched) appends the optional ANNI section so
/// the serve tier can kNN-interpolate long-tail predictions.
/// `format_version` selects the layout; v2 (the default) is required for
/// zero-copy opens and delta generations.
[[nodiscard]] util::Status SaveSnapshot(
    const re::PaModel& model, const text::Vocabulary& vocab,
    const graph::EmbeddingStore& embeddings,
    const std::vector<std::string>& relation_names,
    const std::vector<EntityRecord>& entities,
    const re::BagDatasetOptions& bag_options, uint64_t trained_steps,
    const std::string& notes, const std::string& path,
    const graph::QuantizedEmbeddingStore* quantized = nullptr,
    const re::KnnPredictor* knn = nullptr,
    int format_version = kSnapshotFormatV2);

/// Convenience overload that pulls relation names and the entity table
/// (names + type ids) from a knowledge graph.
[[nodiscard]] util::Status SaveSnapshot(
    const re::PaModel& model, const text::Vocabulary& vocab,
    const graph::EmbeddingStore& embeddings, const kg::KnowledgeGraph& graph,
    const re::BagDatasetOptions& bag_options, uint64_t trained_steps,
    const std::string& notes, const std::string& path,
    const graph::QuantizedEmbeddingStore* quantized = nullptr,
    const re::KnnPredictor* knn = nullptr,
    int format_version = kSnapshotFormatV2);

/// Loads and validates a snapshot (either version, dispatched on the
/// header); the returned model reproduces the saved model's inference
/// outputs bit-for-bit.
[[nodiscard]] util::StatusOr<Snapshot> LoadSnapshot(const std::string& path);

}  // namespace imr::serve

#endif  // IMR_SERVE_SNAPSHOT_H_
