// IMRD row-sparse delta generations: the O(touched-rows) companion of the
// IMRS v2 snapshot format.
//
// A training step that touches 0.2% of the embedding rows should not cost
// an O(vocab x dim) snapshot rewrite plus an O(model) reload to reach the
// serve tier. Instead the trainer writes an IMRD *delta* file — the sorted
// touched-row ids plus just those rows' payloads (fp32, optionally int8),
// plus any changed named parameters — and the serve tier applies it to the
// in-memory base generation:
//
//   base (mmap'd v2)  ──PrivateCopy──>  copy-on-write clone
//                                        │ memcpy touched row-blocks only
//                                        ▼
//                                   new Snapshot (borrowed views over the
//                                   clone; tables/kNN shared with the base)
//
// The kernel CoW-faults only the pages the memcpys dirty, so apply cost is
// O(touched blocks), not O(vocab x dim) — the base mapping stays pinned
// (and its pages shared) until the last borrowing generation drains.
//
// Identity chaining: a delta names its base by the base's FNV-1a content
// hash (v2 footer) and carries result_hash = FNV(delta payload, seed =
// base_hash); applying to any other generation fails with a clean Status.
// SnapshotWatcher uses the (base_hash -> result_hash) edges to apply a
// directory of sibling deltas in chain order.
//
// File layout (little-endian):
//
//   u32 'IMRD'  u32 version=1
//   u64 base_hash
//   DEMB  u32 tag, u32 nv, u32 dim, u32 count, count x u32 row ids
//         (ascending, unique), pad to 64, count x dim raw f32 rows
//   DQEM  OPTIONAL: u32 tag, u32 count, count x u32 row ids, pad to 64,
//         count raw f32 scales, pad to 64, count x dim raw i8 rows
//   DPRM  OPTIONAL: u32 tag, u32 param count, then per parameter:
//         name string, u64 value count, raw f32 values
//   SEND  u32 tag, u64 result_hash          <- last 12 bytes, cheap probe
//
// A base loaded from a v1 file (owned storage, no mapping) still applies:
// the embeddings are copied once and patched in place — O(model), the
// documented fallback, never the serving path bench_serve gates on.
#ifndef IMR_SERVE_DELTA_H_
#define IMR_SERVE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/embedding_store.h"
#include "re/pa_model.h"
#include "serve/snapshot.h"
#include "util/status.h"

namespace imr::serve {

inline constexpr uint32_t kDeltaMagic = 0x494D5244;  // "IMRD"
inline constexpr uint32_t kDeltaFormatVersion = 1;

/// The identity edge a delta file encodes, readable in O(1) (header plus
/// the last 12 bytes) without parsing any payload.
struct DeltaHeader {
  uint64_t base_hash = 0;    // content hash of the generation it applies to
  uint64_t result_hash = 0;  // identity of (base ∘ delta); further deltas
                             // chain on this
};

/// What a delta carries; the caller (trainer) fills touched_rows from the
/// row-sparse gradient tracking (tensor::Tensor::grad_touched_rows()).
struct DeltaSpec {
  /// Embedding rows whose payload the delta carries. Need not be sorted or
  /// unique; out-of-range rows fail SaveDelta.
  std::vector<int> touched_rows;
  /// Also carry int8 rows + scales (requantized from the fp32 rows) so a
  /// quantized-serving base patches without requantizing at apply time.
  bool include_quantized = true;
  /// Names of model parameters (nn::Module registry names) whose full
  /// values the delta carries. Unknown names fail SaveDelta.
  std::vector<std::string> changed_params;
};

/// Probes `path` for its identity edge. Status (not a crash) on anything
/// that is not a well-formed IMRD file.
[[nodiscard]] util::StatusOr<DeltaHeader> ReadDeltaHeader(
    const std::string& path);

/// Writes the delta capturing `spec` against `embeddings` (the POST-step
/// matrix; only the listed rows are read) and `model` (may be null when
/// spec.changed_params is empty). `base_hash` is the content hash of the
/// base generation. Returns the delta's result hash.
[[nodiscard]] util::StatusOr<uint64_t> SaveDelta(
    uint64_t base_hash, const graph::EmbeddingStore& embeddings,
    const re::PaModel* model, const DeltaSpec& spec, const std::string& path);

/// Applies the delta at `path` to `base`, producing a new Snapshot:
/// block-aliases the base mapping via copy-on-write, memcpys only the
/// touched row-blocks, shares the base's tables and kNN predictor, and
/// rebuilds only the (small) parameter set. Fails with a clean Status when
/// the delta's base_hash does not match `base.content_hash`, on any framing
/// corruption, and never crashes on corrupt input.
[[nodiscard]] util::StatusOr<Snapshot> ApplyDelta(const Snapshot& base,
                                                  const std::string& path);

}  // namespace imr::serve

#endif  // IMR_SERVE_DELTA_H_
