// Admission control for the serve tier: bounded per-replica queues with
// backpressure, a queue-wait deadline that sheds work past its SLO budget,
// and a global execution-slot semaphore that bounds how many model
// forwards run concurrently (oversubscribing cores is what blew the p99
// tail up 50x in the pre-router engine — time-slicing four forwards on one
// core multiplies every request's wall latency by the multiprogramming
// level).
//
// Request lifecycle (the admission state machine, see DESIGN.md §12):
//
//   ARRIVED --Admit()-----------------> QUEUED       (depth++, admitted++)
//     |
//     +---------- queue full ---------> REJECTED     (kUnavailable +
//                                                     retry-after hint)
//   QUEUED --OnDequeue()-------------> DISPATCHED    (depth--)
//   DISPATCHED -- deadline passed ---> SHED          (kUnavailable, never
//     |                                               executes)
//   DISPATCHED --AcquireSlot()-------> EXECUTING     (bounded concurrency)
//   EXECUTING --ReleaseSlot()/OnComplete()--> DONE   (service EWMA update)
//
// All counters are relaxed atomics (PoolStats-style): reading stats never
// contends with the request path.
#ifndef IMR_SERVE_ADMISSION_H_
#define IMR_SERVE_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace imr::serve {

struct AdmissionOptions {
  /// Per-replica pending-request cap. Admit() returns kUnavailable (with a
  /// retry-after hint) once every replica is at capacity. 0 = unbounded.
  size_t max_queue = 1024;
  /// Queue-wait SLO budget in microseconds: a request that waited longer
  /// than this before dispatch is shed (kUnavailable) instead of executed —
  /// under sustained overload it is already too late to be useful, and
  /// executing it would steal budget from requests that can still meet
  /// their SLO. 0 disables shedding.
  int64_t deadline_us = 0;
  /// Maximum model forwards executing concurrently across the router.
  /// 0 = auto: the hardware concurrency (min 1), so queues absorb bursts
  /// instead of the OS scheduler time-slicing the tail apart.
  int max_concurrent = 0;
};

/// Per-replica admission counters, snapshotted without locks.
struct AdmissionCounters {
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t shed_deadline = 0;
  uint64_t queue_depth = 0;
  uint64_t queue_peak = 0;
};

class AdmissionController {
 public:
  AdmissionController(int replicas, const AdmissionOptions& options);

  /// The door: picks the least-loaded replica and admits the request into
  /// its queue. Returns the replica index, or kUnavailable when every
  /// replica is at max_queue — the message carries an estimated
  /// retry-after derived from queue depth and the service-time EWMA.
  [[nodiscard]] util::StatusOr<int> Admit();

  /// The request left replica `replica`'s queue (a worker picked it up).
  void OnDequeue(int replica);

  /// True when a request enqueued at `enqueue_time` has exhausted its
  /// queue-wait budget and must be shed instead of executed.
  [[nodiscard]] bool ExpiredInQueue(
      std::chrono::steady_clock::time_point enqueue_time) const;

  /// Records a deadline shed on `replica` and returns the kUnavailable
  /// status the caller should answer with.
  [[nodiscard]] util::Status Shed(int replica, double waited_us);

  /// Blocks until an execution slot frees up. Slots bound concurrent model
  /// forwards to max_concurrent; queue wait is spent here, not inside the
  /// forward, so service latency stays clean under overload.
  void AcquireSlot() IMR_EXCLUDES(slot_mutex_);
  void ReleaseSlot() IMR_EXCLUDES(slot_mutex_);

  /// Feeds the service-time EWMA used for retry-after hints.
  void OnComplete(double service_us);

  int replicas() const { return static_cast<int>(depth_.size()); }
  int max_concurrent() const { return max_concurrent_; }
  const AdmissionOptions& options() const { return options_; }

  [[nodiscard]] AdmissionCounters Counters(int replica) const;
  [[nodiscard]] AdmissionCounters TotalCounters() const;

 private:
  struct alignas(64) ReplicaCounters {
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> rejected{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<int64_t> depth{0};
    std::atomic<uint64_t> peak{0};
  };

  AdmissionOptions options_;
  int max_concurrent_;
  std::vector<std::unique_ptr<ReplicaCounters>> depth_;
  std::atomic<int64_t> service_ewma_us_{0};  // microseconds, ~1/8 gain
  std::atomic<uint64_t> round_robin_{0};

  util::Mutex slot_mutex_;
  util::CondVar slot_cv_;
  int slots_free_ IMR_GUARDED_BY(slot_mutex_);
};

}  // namespace imr::serve

#endif  // IMR_SERVE_ADMISSION_H_
