// Watches a snapshot path for new IMRS generations and drives a reload
// callback (typically ServeRouter::Reload) when the file settles. Polling
// is mtime+size based — no inotify dependency — with a two-poll stability
// requirement so a snapshot still being written (trainer mid-Save) is
// never loaded half-flushed: a change is acted on only after two
// consecutive polls observe the SAME new signature.
//
// A failed reload (corrupt file, ValidateSwap refusal) is counted and
// recorded in last_error(); the old generation keeps serving and the
// watcher re-arms, so dropping a fixed snapshot at the same path later
// still rolls out.
//
// Delta generations: with WatchDeltas() installed, every poll also scans
// the snapshot's directory for sibling `*.imrd` files (delta.h). Each file
// gets the same two-poll debounce; a settled delta whose base hash matches
// the serving generation's content hash is applied (ReloadDelta), and
// because a successful apply advances the serving hash, a directory of
// chained deltas rolls out in base-hash order within one poll. A delta
// whose APPLY fails has its signature consumed — it is not retried every
// poll (no retry storm); rewriting the file re-arms it. A delta whose base
// hash simply does not match yet stays pending at O(1) header-probe cost.
#ifndef IMR_SERVE_SNAPSHOT_WATCHER_H_
#define IMR_SERVE_SNAPSHOT_WATCHER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace imr::serve {

struct WatcherOptions {
  /// Poll cadence for the background thread (Start()). CheckNow() ignores
  /// this and evaluates one poll synchronously.
  int poll_interval_ms = 500;
};

struct WatcherStats {
  uint64_t polls = 0;
  uint64_t reloads_attempted = 0;
  uint64_t reloads_succeeded = 0;
  uint64_t reloads_failed = 0;
  /// IMRD delta traffic (WatchDeltas() installed): applies attempted on
  /// hash-matched settled deltas, and their outcomes.
  uint64_t delta_applies_attempted = 0;
  uint64_t delta_applies_succeeded = 0;
  uint64_t delta_applies_failed = 0;
};

/// How the watcher talks to the serve tier about deltas. Both hooks are
/// required: `serving_hash` reports the content hash of the generation
/// serving right now (ServeRouter::content_hash), `apply` performs the
/// delta reload (ServeRouter::ReloadDelta).
struct DeltaHooks {
  std::function<uint64_t()> serving_hash;
  std::function<util::Status(const std::string& delta_path)> apply;
};

class SnapshotWatcher {
 public:
  using ReloadFn = std::function<util::Status(const std::string& path)>;

  /// `reload` is invoked (on the watcher thread, or the CheckNow caller)
  /// each time the watched file settles at a new signature. The initial
  /// signature is taken from the file as it exists now, so the generation
  /// already being served is not re-loaded.
  SnapshotWatcher(std::string path, ReloadFn reload,
                  const WatcherOptions& options = {});
  ~SnapshotWatcher();

  SnapshotWatcher(const SnapshotWatcher&) = delete;
  SnapshotWatcher& operator=(const SnapshotWatcher&) = delete;

  /// Starts the background polling thread. Idempotent.
  void Start() IMR_EXCLUDES(mutex_);

  /// Stops and joins the polling thread. Called by the destructor.
  void Stop() IMR_EXCLUDES(mutex_);

  /// Runs one poll step synchronously on the calling thread — the
  /// deterministic path for tests and for single-shot "reload if changed"
  /// checks. Returns true if a reload was attempted (look at stats /
  /// last_error for the outcome).
  bool CheckNow() IMR_EXCLUDES(mutex_);

  /// Enables sibling `*.imrd` delta polling (see the class comment).
  /// Install before Start().
  void WatchDeltas(DeltaHooks hooks) IMR_EXCLUDES(mutex_);

  [[nodiscard]] WatcherStats Stats() const IMR_EXCLUDES(mutex_);
  /// Message of the most recent failed reload; empty after a success.
  [[nodiscard]] std::string last_error() const IMR_EXCLUDES(mutex_);
  const std::string& path() const { return path_; }

 private:
  struct Signature {
    int64_t mtime_ns = 0;
    int64_t size = -1;  // -1: file absent
    bool operator==(const Signature&) const = default;
  };

  /// Per-delta-file debounce/consumption bookkeeping, keyed by path.
  struct DeltaState {
    Signature candidate;
    bool has_candidate = false;
    /// The signature already acted on (applied or failed) — never retried.
    Signature consumed;
    bool has_consumed = false;
  };

  static Signature Stat(const std::string& path);
  void PollLoop() IMR_EXCLUDES(mutex_);
  /// One poll step: stat + stability bookkeeping + (maybe) reload. File
  /// I/O and the reload callback run with mutex_ released — the lock only
  /// covers bookkeeping, so Stats() never blocks behind a snapshot load.
  bool PollStep() IMR_EXCLUDES(mutex_);
  /// The full-snapshot half of a poll step.
  bool SnapshotPollStep() IMR_EXCLUDES(mutex_);
  /// The delta half: scan, debounce, then apply hash-matched deltas until
  /// no more progress (chains roll out within one poll).
  bool DeltaPollStep() IMR_EXCLUDES(mutex_);
  /// `*.imrd` files in the watched snapshot's directory, sorted.
  std::vector<std::string> ListDeltaFiles() const;

  const std::string path_;
  const ReloadFn reload_;
  const WatcherOptions options_;
  DeltaHooks delta_hooks_;  // set once via WatchDeltas, before Start

  mutable util::Mutex mutex_;
  util::CondVar stop_cv_;
  bool running_ IMR_GUARDED_BY(mutex_) = false;
  bool stop_ IMR_GUARDED_BY(mutex_) = false;
  Signature loaded_ IMR_GUARDED_BY(mutex_);     // signature last reloaded (or boot)
  Signature candidate_ IMR_GUARDED_BY(mutex_);  // new signature awaiting stability
  bool has_candidate_ IMR_GUARDED_BY(mutex_) = false;
  std::unordered_map<std::string, DeltaState> deltas_ IMR_GUARDED_BY(mutex_);
  WatcherStats stats_ IMR_GUARDED_BY(mutex_);
  std::string last_error_ IMR_GUARDED_BY(mutex_);
  // Written under mutex_ in Start(), joined unlocked in Stop().
  std::thread thread_;
};

}  // namespace imr::serve

#endif  // IMR_SERVE_SNAPSHOT_WATCHER_H_
