// Watches a snapshot path for new IMRS generations and drives a reload
// callback (typically ServeRouter::Reload) when the file settles. Polling
// is mtime+size based — no inotify dependency — with a two-poll stability
// requirement so a snapshot still being written (trainer mid-Save) is
// never loaded half-flushed: a change is acted on only after two
// consecutive polls observe the SAME new signature.
//
// A failed reload (corrupt file, ValidateSwap refusal) is counted and
// recorded in last_error(); the old generation keeps serving and the
// watcher re-arms, so dropping a fixed snapshot at the same path later
// still rolls out.
#ifndef IMR_SERVE_SNAPSHOT_WATCHER_H_
#define IMR_SERVE_SNAPSHOT_WATCHER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace imr::serve {

struct WatcherOptions {
  /// Poll cadence for the background thread (Start()). CheckNow() ignores
  /// this and evaluates one poll synchronously.
  int poll_interval_ms = 500;
};

struct WatcherStats {
  uint64_t polls = 0;
  uint64_t reloads_attempted = 0;
  uint64_t reloads_succeeded = 0;
  uint64_t reloads_failed = 0;
};

class SnapshotWatcher {
 public:
  using ReloadFn = std::function<util::Status(const std::string& path)>;

  /// `reload` is invoked (on the watcher thread, or the CheckNow caller)
  /// each time the watched file settles at a new signature. The initial
  /// signature is taken from the file as it exists now, so the generation
  /// already being served is not re-loaded.
  SnapshotWatcher(std::string path, ReloadFn reload,
                  const WatcherOptions& options = {});
  ~SnapshotWatcher();

  SnapshotWatcher(const SnapshotWatcher&) = delete;
  SnapshotWatcher& operator=(const SnapshotWatcher&) = delete;

  /// Starts the background polling thread. Idempotent.
  void Start() IMR_EXCLUDES(mutex_);

  /// Stops and joins the polling thread. Called by the destructor.
  void Stop() IMR_EXCLUDES(mutex_);

  /// Runs one poll step synchronously on the calling thread — the
  /// deterministic path for tests and for single-shot "reload if changed"
  /// checks. Returns true if a reload was attempted (look at stats /
  /// last_error for the outcome).
  bool CheckNow() IMR_EXCLUDES(mutex_);

  [[nodiscard]] WatcherStats Stats() const IMR_EXCLUDES(mutex_);
  /// Message of the most recent failed reload; empty after a success.
  [[nodiscard]] std::string last_error() const IMR_EXCLUDES(mutex_);
  const std::string& path() const { return path_; }

 private:
  struct Signature {
    int64_t mtime_ns = 0;
    int64_t size = -1;  // -1: file absent
    bool operator==(const Signature&) const = default;
  };

  static Signature Stat(const std::string& path);
  void PollLoop() IMR_EXCLUDES(mutex_);
  /// One poll step: stat + stability bookkeeping + (maybe) reload. File
  /// I/O and the reload callback run with mutex_ released — the lock only
  /// covers bookkeeping, so Stats() never blocks behind a snapshot load.
  bool PollStep() IMR_EXCLUDES(mutex_);

  const std::string path_;
  const ReloadFn reload_;
  const WatcherOptions options_;

  mutable util::Mutex mutex_;
  util::CondVar stop_cv_;
  bool running_ IMR_GUARDED_BY(mutex_) = false;
  bool stop_ IMR_GUARDED_BY(mutex_) = false;
  Signature loaded_ IMR_GUARDED_BY(mutex_);     // signature last reloaded (or boot)
  Signature candidate_ IMR_GUARDED_BY(mutex_);  // new signature awaiting stability
  bool has_candidate_ IMR_GUARDED_BY(mutex_) = false;
  WatcherStats stats_ IMR_GUARDED_BY(mutex_);
  std::string last_error_ IMR_GUARDED_BY(mutex_);
  // Written under mutex_ in Start(), joined unlocked in Stop().
  std::thread thread_;
};

}  // namespace imr::serve

#endif  // IMR_SERVE_SNAPSHOT_WATCHER_H_
