#include "eval/heldout.h"

#include <algorithm>

#include "kg/knowledge_graph.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace imr::eval {

std::string HeldOutResult::Summary() const {
  return util::StrFormat(
      "AUC=%.4f P=%.4f R=%.4f F1=%.4f P@100=%.2f P@200=%.2f", auc,
      best.precision, best.recall, best.f1, p_at_100, p_at_200);
}

HeldOutResult Evaluate(const BagScorer& scorer,
                       const std::vector<re::Bag>& bags, int num_relations) {
  IMR_CHECK_GT(num_relations, 1);
  HeldOutResult result;
  result.facts.reserve(bags.size() *
                       static_cast<size_t>(num_relations - 1));
  result.hard_predictions.reserve(bags.size());
  result.gold_labels.reserve(bags.size());

  for (const re::Bag& bag : bags) {
    const std::vector<float> probabilities = scorer(bag);
    IMR_CHECK_EQ(static_cast<int>(probabilities.size()), num_relations);
    if (bag.relation != kg::kNaRelation) ++result.total_positives;
    int argmax = 0;
    for (int r = 1; r < num_relations; ++r) {
      if (probabilities[static_cast<size_t>(r)] >
          probabilities[static_cast<size_t>(argmax)])
        argmax = r;
      ScoredFact fact;
      fact.head = bag.head;
      fact.tail = bag.tail;
      fact.relation = r;
      fact.score = probabilities[static_cast<size_t>(r)];
      fact.correct = (bag.relation == r);
      result.facts.push_back(fact);
    }
    result.hard_predictions.push_back(argmax);
    result.gold_labels.push_back(bag.relation);
  }

  result.curve = PrecisionRecallCurve(&result.facts, result.total_positives);
  result.auc = AucPr(result.curve);
  result.best = MaxF1(result.curve);
  result.p_at_100 = PrecisionAtK(result.facts, 100);
  result.p_at_200 = PrecisionAtK(result.facts, 200);
  return result;
}

}  // namespace imr::eval
