// Multi-run aggregation: the paper reports every metric as the average of
// five runs. RunStats accumulates per-run metric values and reports
// mean / stddev / min / max.
#ifndef IMR_EVAL_AGGREGATE_H_
#define IMR_EVAL_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "eval/heldout.h"

namespace imr::eval {

struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  int runs = 0;
};

class RunStats {
 public:
  /// Records one named metric observation.
  void Add(const std::string& metric, double value);

  /// Records the standard metric set of one held-out result.
  void AddResult(const HeldOutResult& result);

  /// Summary of a metric; zero-initialised if never recorded.
  MetricSummary Summary(const std::string& metric) const;

  std::vector<std::string> MetricNames() const;

 private:
  std::map<std::string, std::vector<double>> values_;
};

}  // namespace imr::eval

#endif  // IMR_EVAL_AGGREGATE_H_
