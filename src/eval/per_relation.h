// Per-relation breakdown of hard predictions: precision / recall / F1 and
// support for each relation, plus macro averages. Complements the
// held-out micro metrics with the view a practitioner debugging a single
// relation needs.
#ifndef IMR_EVAL_PER_RELATION_H_
#define IMR_EVAL_PER_RELATION_H_

#include <string>
#include <vector>

namespace imr::eval {

struct RelationReport {
  int relation = 0;
  int64_t support = 0;        // gold occurrences
  int64_t predicted = 0;      // predicted occurrences
  int64_t true_positive = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

struct PerRelationResult {
  std::vector<RelationReport> relations;  // index == relation id
  double macro_precision = 0.0;  // over relations with support > 0, excl NA
  double macro_recall = 0.0;
  double macro_f1 = 0.0;
  int relations_with_support = 0;
};

/// Computes the breakdown from aligned gold/predicted label vectors.
/// Relation ids must lie in [0, num_relations). NA (id `na_relation`) is
/// reported but excluded from the macro averages.
PerRelationResult PerRelationBreakdown(const std::vector<int>& gold,
                                       const std::vector<int>& predicted,
                                       int num_relations,
                                       int na_relation = 0);

}  // namespace imr::eval

#endif  // IMR_EVAL_PER_RELATION_H_
