// Held-out evaluation driver: scores every test bag with a model (or any
// scoring callback), turns the scores into candidate facts, and computes
// the paper's metric set (AUC, P/R/F1 at max-F1, P@100, P@200).
#ifndef IMR_EVAL_HELDOUT_H_
#define IMR_EVAL_HELDOUT_H_

#include <functional>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "re/bag_dataset.h"

namespace imr::eval {

/// Returns P(relation | bag) for all relations (index 0 = NA).
using BagScorer = std::function<std::vector<float>(const re::Bag&)>;

struct HeldOutResult {
  std::vector<ScoredFact> facts;  // sorted by descending score
  std::vector<PrPoint> curve;
  int64_t total_positives = 0;
  double auc = 0.0;
  F1Point best;
  double p_at_100 = 0.0;
  double p_at_200 = 0.0;

  /// Hard prediction per test bag (argmax incl. NA), aligned with the bag
  /// order passed to Evaluate — used by the bucketed analyses.
  std::vector<int> hard_predictions;
  std::vector<int> gold_labels;

  std::string Summary() const;  // one-line "AUC=... P=... R=... F1=..."
};

/// Evaluates `scorer` on `bags`. Every non-NA relation of every bag becomes
/// a candidate fact with the scorer's probability.
HeldOutResult Evaluate(const BagScorer& scorer,
                       const std::vector<re::Bag>& bags, int num_relations);

}  // namespace imr::eval

#endif  // IMR_EVAL_HELDOUT_H_
