#include "eval/buckets.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace imr::eval {

BucketedF1 F1ByBucket(
    const std::vector<re::Bag>& bags, const std::vector<int>& gold,
    const std::vector<int>& predicted,
    const std::vector<std::string>& labels,
    const std::function<int(const re::Bag&)>& bucket_of) {
  IMR_CHECK_EQ(bags.size(), gold.size());
  IMR_CHECK_EQ(bags.size(), predicted.size());
  const int num_buckets = static_cast<int>(labels.size());
  std::vector<std::vector<int>> gold_by_bucket(
      static_cast<size_t>(num_buckets));
  std::vector<std::vector<int>> pred_by_bucket(
      static_cast<size_t>(num_buckets));
  for (size_t i = 0; i < bags.size(); ++i) {
    const int bucket = bucket_of(bags[i]);
    if (bucket < 0) continue;
    IMR_CHECK_LT(bucket, num_buckets);
    gold_by_bucket[static_cast<size_t>(bucket)].push_back(gold[i]);
    pred_by_bucket[static_cast<size_t>(bucket)].push_back(predicted[i]);
  }
  BucketedF1 result;
  result.labels = labels;
  for (int b = 0; b < num_buckets; ++b) {
    result.scores.push_back(MicroF1NonNa(
        gold_by_bucket[static_cast<size_t>(b)],
        pred_by_bucket[static_cast<size_t>(b)]));
    result.bag_counts.push_back(
        static_cast<int64_t>(gold_by_bucket[static_cast<size_t>(b)].size()));
  }
  return result;
}

std::function<int(const re::Bag&)> QuantileBuckets(
    const std::vector<re::Bag>& bags,
    const std::function<double(const re::Bag&)>& statistic, int num_buckets,
    std::vector<std::string>* labels_out) {
  IMR_CHECK_GT(num_buckets, 0);
  std::vector<double> values;
  values.reserve(bags.size());
  for (const re::Bag& bag : bags) values.push_back(statistic(bag));
  std::sort(values.begin(), values.end());

  // Bucket b covers statistic values in (cut[b-1], cut[b]]. Duplicate cut
  // values (heavy ties, e.g. many pairs with zero co-occurrences) are
  // merged so no bucket can be structurally empty.
  std::vector<double> cuts;
  for (int b = 1; b < num_buckets; ++b) {
    const size_t index = std::min(
        values.size() - 1,
        static_cast<size_t>(static_cast<double>(values.size()) * b /
                            num_buckets));
    cuts.push_back(values[index]);
  }
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (!cuts.empty() && cuts.back() >= values.back()) cuts.pop_back();
  if (labels_out != nullptr) {
    labels_out->clear();
    double previous = values.front();
    for (size_t b = 0; b < cuts.size(); ++b) {
      labels_out->push_back(b == 0
                                ? util::StrFormat("<=%.0f", cuts[b])
                                : util::StrFormat("%.0f-%.0f", previous,
                                                  cuts[b]));
      previous = cuts[b];
    }
    labels_out->push_back(util::StrFormat(">%.0f", previous));
  }
  return [statistic, cuts](const re::Bag& bag) {
    const double value = statistic(bag);
    for (size_t b = 0; b < cuts.size(); ++b) {
      if (value <= cuts[b]) return static_cast<int>(b);
    }
    return static_cast<int>(cuts.size());
  };
}

}  // namespace imr::eval
