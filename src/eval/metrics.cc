#include "eval/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace imr::eval {

std::vector<PrPoint> PrecisionRecallCurve(std::vector<ScoredFact>* facts,
                                          int64_t total_positives) {
  IMR_CHECK(facts != nullptr);
  std::sort(facts->begin(), facts->end(),
            [](const ScoredFact& a, const ScoredFact& b) {
              if (a.score != b.score) return a.score > b.score;
              // Tie-break deterministically.
              if (a.head != b.head) return a.head < b.head;
              if (a.tail != b.tail) return a.tail < b.tail;
              return a.relation < b.relation;
            });
  std::vector<PrPoint> curve;
  curve.reserve(facts->size());
  int64_t correct = 0;
  for (size_t i = 0; i < facts->size(); ++i) {
    correct += (*facts)[i].correct ? 1 : 0;
    PrPoint point;
    point.precision = static_cast<double>(correct) /
                      static_cast<double>(i + 1);
    point.recall = total_positives > 0
                       ? static_cast<double>(correct) /
                             static_cast<double>(total_positives)
                       : 0.0;
    point.threshold = (*facts)[i].score;
    curve.push_back(point);
  }
  return curve;
}

double AucPr(const std::vector<PrPoint>& curve) {
  if (curve.empty()) return 0.0;
  double auc = 0.0;
  double prev_recall = 0.0;
  double prev_precision = 1.0;
  for (const PrPoint& point : curve) {
    auc += (point.recall - prev_recall) *
           0.5 * (point.precision + prev_precision);
    prev_recall = point.recall;
    prev_precision = point.precision;
  }
  return auc;
}

F1Point MaxF1(const std::vector<PrPoint>& curve) {
  F1Point best;
  for (const PrPoint& point : curve) {
    const double denom = point.precision + point.recall;
    const double f1 = denom > 0 ? 2 * point.precision * point.recall / denom
                                : 0.0;
    if (f1 > best.f1) {
      best.f1 = f1;
      best.precision = point.precision;
      best.recall = point.recall;
      best.threshold = point.threshold;
    }
  }
  return best;
}

double PrecisionAtK(const std::vector<ScoredFact>& facts, size_t k) {
  if (facts.empty() || k == 0) return 0.0;
  const size_t n = std::min(k, facts.size());
  int64_t correct = 0;
  for (size_t i = 0; i < n; ++i) correct += facts[i].correct ? 1 : 0;
  return static_cast<double>(correct) / static_cast<double>(n);
}

MicroF1 MicroF1NonNa(const std::vector<int>& gold,
                     const std::vector<int>& predicted, int na_relation) {
  IMR_CHECK_EQ(gold.size(), predicted.size());
  int64_t true_positive = 0, predicted_positive = 0, gold_positive = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    if (predicted[i] != na_relation) ++predicted_positive;
    if (gold[i] != na_relation) ++gold_positive;
    if (predicted[i] != na_relation && predicted[i] == gold[i])
      ++true_positive;
  }
  MicroF1 out;
  out.support = gold_positive;
  out.precision = predicted_positive > 0
                      ? static_cast<double>(true_positive) /
                            static_cast<double>(predicted_positive)
                      : 0.0;
  out.recall = gold_positive > 0
                   ? static_cast<double>(true_positive) /
                         static_cast<double>(gold_positive)
                   : 0.0;
  const double denom = out.precision + out.recall;
  out.f1 = denom > 0 ? 2 * out.precision * out.recall / denom : 0.0;
  return out;
}

}  // namespace imr::eval
