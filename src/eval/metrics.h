// Held-out evaluation metrics for distant-supervision RE (paper Section
// IV-A.2): precision-recall curve over scored facts, area under the PR
// curve, the max-F1 operating point, and precision at top-N.
#ifndef IMR_EVAL_METRICS_H_
#define IMR_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace imr::eval {

/// One candidate fact emitted by a model: pair + non-NA relation + score.
struct ScoredFact {
  int64_t head = -1;
  int64_t tail = -1;
  int relation = 0;
  double score = 0.0;
  bool correct = false;  // the KG contains (head, relation, tail)
};

struct PrPoint {
  double precision = 0.0;
  double recall = 0.0;
  double threshold = 0.0;
};

/// Sorts facts by descending score and sweeps the threshold.
/// `total_positives` is the number of true facts in the test set (the
/// recall denominator). Facts list may be modified (sorted).
std::vector<PrPoint> PrecisionRecallCurve(std::vector<ScoredFact>* facts,
                                          int64_t total_positives);

/// Area under the PR curve by trapezoidal rule over recall.
double AucPr(const std::vector<PrPoint>& curve);

struct F1Point {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double threshold = 0.0;
};

/// Operating point with the maximum F1 (paper reports P/R at this point).
F1Point MaxF1(const std::vector<PrPoint>& curve);

/// Precision among the top-k facts by score (P@N). Facts must already be
/// sorted descending (PrecisionRecallCurve does this).
double PrecisionAtK(const std::vector<ScoredFact>& facts, size_t k);

/// Micro-averaged F1 of hard predictions against gold labels, ignoring the
/// NA class in both precision and recall (used by the Fig. 6/7 buckets).
struct MicroF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int64_t support = 0;  // gold non-NA count
};
MicroF1 MicroF1NonNa(const std::vector<int>& gold,
                     const std::vector<int>& predicted, int na_relation = 0);

}  // namespace imr::eval

#endif  // IMR_EVAL_METRICS_H_
