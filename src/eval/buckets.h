// Bucketed F1 analyses for the paper's Fig. 6 (by co-occurrence frequency
// of the pair in the unlabeled corpus) and Fig. 7 (by number of training
// sentences of the pair in the distant-supervision corpus).
#ifndef IMR_EVAL_BUCKETS_H_
#define IMR_EVAL_BUCKETS_H_

#include <functional>
#include <string>
#include <vector>

#include "eval/metrics.h"
#include "re/bag_dataset.h"

namespace imr::eval {

struct BucketedF1 {
  std::vector<std::string> labels;
  std::vector<MicroF1> scores;
  std::vector<int64_t> bag_counts;
};

/// Assigns every bag to a bucket via `bucket_of` (return -1 to skip) and
/// computes non-NA micro-F1 per bucket from the aligned predictions.
BucketedF1 F1ByBucket(
    const std::vector<re::Bag>& bags, const std::vector<int>& gold,
    const std::vector<int>& predicted,
    const std::vector<std::string>& labels,
    const std::function<int(const re::Bag&)>& bucket_of);

/// Quantile bucketing helper: given a per-bag statistic, returns a
/// bucket_of function splitting the bags into `num_buckets` equal-count
/// quantiles (Fig. 6 uses quantiles of co-occurrence frequency).
std::function<int(const re::Bag&)> QuantileBuckets(
    const std::vector<re::Bag>& bags,
    const std::function<double(const re::Bag&)>& statistic, int num_buckets,
    std::vector<std::string>* labels_out);

}  // namespace imr::eval

#endif  // IMR_EVAL_BUCKETS_H_
