#include "eval/per_relation.h"

#include "util/logging.h"

namespace imr::eval {

PerRelationResult PerRelationBreakdown(const std::vector<int>& gold,
                                       const std::vector<int>& predicted,
                                       int num_relations, int na_relation) {
  IMR_CHECK_EQ(gold.size(), predicted.size());
  IMR_CHECK_GT(num_relations, 0);
  PerRelationResult result;
  result.relations.resize(static_cast<size_t>(num_relations));
  for (int r = 0; r < num_relations; ++r)
    result.relations[static_cast<size_t>(r)].relation = r;

  for (size_t i = 0; i < gold.size(); ++i) {
    IMR_CHECK_GE(gold[i], 0);
    IMR_CHECK_LT(gold[i], num_relations);
    IMR_CHECK_GE(predicted[i], 0);
    IMR_CHECK_LT(predicted[i], num_relations);
    ++result.relations[static_cast<size_t>(gold[i])].support;
    ++result.relations[static_cast<size_t>(predicted[i])].predicted;
    if (gold[i] == predicted[i])
      ++result.relations[static_cast<size_t>(gold[i])].true_positive;
  }

  double precision_sum = 0, recall_sum = 0, f1_sum = 0;
  for (RelationReport& report : result.relations) {
    report.precision =
        report.predicted > 0
            ? static_cast<double>(report.true_positive) / report.predicted
            : 0.0;
    report.recall =
        report.support > 0
            ? static_cast<double>(report.true_positive) / report.support
            : 0.0;
    const double denom = report.precision + report.recall;
    report.f1 =
        denom > 0 ? 2 * report.precision * report.recall / denom : 0.0;
    if (report.relation != na_relation && report.support > 0) {
      precision_sum += report.precision;
      recall_sum += report.recall;
      f1_sum += report.f1;
      ++result.relations_with_support;
    }
  }
  if (result.relations_with_support > 0) {
    result.macro_precision = precision_sum / result.relations_with_support;
    result.macro_recall = recall_sum / result.relations_with_support;
    result.macro_f1 = f1_sum / result.relations_with_support;
  }
  return result;
}

}  // namespace imr::eval
