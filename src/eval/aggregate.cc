#include "eval/aggregate.h"

#include <algorithm>
#include <cmath>

namespace imr::eval {

void RunStats::Add(const std::string& metric, double value) {
  values_[metric].push_back(value);
}

void RunStats::AddResult(const HeldOutResult& result) {
  Add("auc", result.auc);
  Add("precision", result.best.precision);
  Add("recall", result.best.recall);
  Add("f1", result.best.f1);
  Add("p@100", result.p_at_100);
  Add("p@200", result.p_at_200);
}

MetricSummary RunStats::Summary(const std::string& metric) const {
  MetricSummary summary;
  auto it = values_.find(metric);
  if (it == values_.end() || it->second.empty()) return summary;
  const std::vector<double>& values = it->second;
  summary.runs = static_cast<int>(values.size());
  summary.min = *std::min_element(values.begin(), values.end());
  summary.max = *std::max_element(values.begin(), values.end());
  double sum = 0;
  for (double v : values) sum += v;
  summary.mean = sum / values.size();
  double sq = 0;
  for (double v : values) sq += (v - summary.mean) * (v - summary.mean);
  summary.stddev =
      values.size() > 1 ? std::sqrt(sq / (values.size() - 1)) : 0.0;
  return summary;
}

std::vector<std::string> RunStats::MetricNames() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, values] : values_) names.push_back(name);
  return names;
}

}  // namespace imr::eval
