// End-to-end distant-supervision pipeline with file round-tripping:
//
//   generate world -> save vocabulary + LINE embeddings + model parameters
//   to disk -> reload everything into a *fresh* model -> verify the
//   reloaded model scores identically -> compare PCNN+ATT vs PA-TMR.
//
// Demonstrates the persistence surface a production deployment would use
// (train offline, ship vocab/embeddings/parameters, serve).
//
// Run:  ./build/examples/distant_supervision_pipeline [workdir]
#include <cmath>
#include <cstdio>
#include <string>

#include "datagen/presets.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "re/bag_dataset.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "util/logging.h"
#include "util/tsv_writer.h"

using namespace imr;  // example code; library code never does this

namespace {

re::PaModelConfig ModelConfig(const re::BagDataset& bags, int mr_dim,
                              bool use_extras) {
  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = re::Aggregation::kAttention;
  config.use_mutual_relation = use_extras;
  config.use_entity_type = use_extras;
  config.mutual_relation_dim = mr_dim;
  config.type_dim = 8;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 32;
  config.encoder_config.word_dropout = 0.25f;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  util::SetLogLevel(util::LogLevel::kWarning);
  const std::string workdir = argc > 1 ? argv[1] : "/tmp/imr_pipeline";
  IMR_CHECK(util::MakeDirectories(workdir).ok());

  // --- Stage 1: data ---
  datagen::PresetOptions options;
  options.scale = 1.0;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  re::BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  re::BagDataset bags =
      re::BagDataset::Build(dataset.world.graph, dataset.corpus.train,
                            dataset.corpus.test, bag_options);
  IMR_CHECK(bags.vocabulary().Save(workdir + "/vocab.bin").ok());
  std::printf("stage 1: %zu train bags, vocabulary saved\n",
              bags.train_bags().size());

  // --- Stage 2: implicit mutual relations ---
  graph::ProximityGraph proximity(dataset.world.graph.num_entities());
  proximity.AddCorpus(dataset.unlabeled.sentences);
  proximity.Finalize(2);
  graph::LineConfig line;
  line.dim = 64;
  graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line);
  IMR_CHECK(embeddings.Save(workdir + "/entities.emb").ok());
  auto reloaded_embeddings =
      graph::EmbeddingStore::Load(workdir + "/entities.emb");
  IMR_CHECK(reloaded_embeddings.ok());
  IMR_CHECK(bags.AttachMutualRelations(*reloaded_embeddings).ok());
  std::printf("stage 2: LINE embeddings trained, saved and reloaded\n");

  // --- Stage 3: train both models ---
  re::TrainerConfig trainer_config;
  trainer_config.epochs = 30;
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;

  util::Rng rng(7);
  re::PaModel baseline(ModelConfig(bags, 64, /*use_extras=*/false), &rng);
  eval::HeldOutResult baseline_result = re::TrainAndEvaluate(
      &baseline, bags.train_bags(), bags.test_bags(), trainer_config);

  re::PaModel pa_tmr(ModelConfig(bags, 64, /*use_extras=*/true), &rng);
  eval::HeldOutResult pa_result = re::TrainAndEvaluate(
      &pa_tmr, bags.train_bags(), bags.test_bags(), trainer_config);

  std::printf("stage 3:\n  PCNN+ATT %s\n  PA-TMR   %s\n",
              baseline_result.Summary().c_str(),
              pa_result.Summary().c_str());

  // --- Stage 4: persist the trained model and verify the round trip ---
  IMR_CHECK(pa_tmr.SaveParameters(workdir + "/pa_tmr.params").ok());
  util::Rng rng2(99);  // different init, then overwritten by the load
  re::PaModel served(ModelConfig(bags, 64, /*use_extras=*/true), &rng2);
  IMR_CHECK(served.LoadParameters(workdir + "/pa_tmr.params").ok());
  served.SetTraining(false);
  pa_tmr.SetTraining(false);

  double max_diff = 0;
  util::Rng eval_rng(1);
  for (size_t i = 0; i < std::min<size_t>(20, bags.test_bags().size());
       ++i) {
    auto a = pa_tmr.Predict(bags.test_bags()[i], &eval_rng);
    auto b = served.Predict(bags.test_bags()[i], &eval_rng);
    for (size_t r = 0; r < a.size(); ++r)
      max_diff = std::max(max_diff, std::abs(double(a[r]) - b[r]));
  }
  std::printf("stage 4: parameters round-tripped; max prediction diff "
              "%.2e %s\n", max_diff, max_diff < 1e-6 ? "[OK]" : "[FAIL]");

  std::printf("\nPA-TMR improves AUC by %+0.4f over PCNN+ATT on this run\n",
              pa_result.auc - baseline_result.auc);
  return max_diff < 1e-6 ? 0 : 1;
}
