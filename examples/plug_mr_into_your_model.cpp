// The paper's "flexibility" claim as an API walkthrough: take any sentence
// encoder — including one you wrote yourself — and bolt the implicit-
// mutual-relation + entity-type fusion on top without touching the
// encoder. Here we register a custom bag-of-embeddings encoder (not part
// of the library!) and compare it base vs +TMR.
//
// Run:  ./build/examples/plug_mr_into_your_model
#include <cstdio>

#include "datagen/presets.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "nn/encoders.h"
#include "re/bag_dataset.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "util/logging.h"

using namespace imr;  // example code; library code never does this

namespace {

// A deliberately simple custom encoder: mean of word+position embeddings
// through one tanh layer. Anything deriving nn::SentenceEncoder works.
class BagOfEmbeddingsEncoder : public nn::SentenceEncoder {
 public:
  BagOfEmbeddingsEncoder(const nn::EncoderConfig& config, util::Rng* rng)
      : config_(config) {
    embedder_ = std::make_unique<nn::FeatureEmbedder>(config, rng);
    RegisterChild("embedder", embedder_.get());
    projection_ = std::make_unique<nn::Linear>(embedder_->feature_dim(),
                                               config.filters, rng);
    RegisterChild("projection", projection_.get());
  }

  tensor::Tensor Encode(const nn::EncoderInput& input,
                        util::Rng* rng) const override {
    tensor::Tensor features = embedder_->Embed(input, rng);
    tensor::Tensor mean = tensor::MeanRows(features);
    tensor::Tensor hidden = tensor::Tanh(projection_->Forward(mean));
    return tensor::Dropout(hidden, config_.dropout, rng, training());
  }

  int output_dim() const override { return config_.filters; }

 private:
  nn::EncoderConfig config_;
  std::unique_ptr<nn::FeatureEmbedder> embedder_;
  std::unique_ptr<nn::Linear> projection_;
};

}  // namespace

int main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  datagen::PresetOptions options;
  options.scale = 1.0;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  re::BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  re::BagDataset bags =
      re::BagDataset::Build(dataset.world.graph, dataset.corpus.train,
                            dataset.corpus.test, bag_options);

  graph::ProximityGraph proximity(dataset.world.graph.num_entities());
  proximity.AddCorpus(dataset.unlabeled.sentences);
  proximity.Finalize(2);
  graph::LineConfig line;
  line.dim = 64;
  graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line);
  IMR_CHECK(bags.AttachMutualRelations(embeddings).ok());

  // NOTE: PaModel builds its encoder by name; custom encoders plug in at
  // the layer level. To keep this example honest we train the custom
  // encoder with the same fusion heads, wired manually.
  nn::EncoderConfig encoder_config;
  encoder_config.vocab_size = bags.vocabulary().size();
  encoder_config.word_dim = 16;
  encoder_config.position_dim = 3;
  encoder_config.max_position = 20;
  encoder_config.filters = 32;
  encoder_config.word_dropout = 0.25f;

  // Library encoders, base vs +TMR, using the bundled config switches.
  re::TrainerConfig trainer_config;
  trainer_config.epochs = 25;
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;

  std::printf("%-22s %10s %10s\n", "encoder", "base AUC", "+TMR AUC");
  for (const char* encoder : {"cnn", "pcnn", "gru"}) {
    double auc[2] = {0, 0};
    for (int with_tmr = 0; with_tmr < 2; ++with_tmr) {
      util::Rng rng(11);
      re::PaModelConfig config;
      config.num_relations = bags.num_relations();
      config.encoder = encoder;
      config.aggregation = re::Aggregation::kAttention;
      config.use_mutual_relation = (with_tmr == 1);
      config.use_entity_type = (with_tmr == 1);
      config.mutual_relation_dim = embeddings.dim();
      config.type_dim = 8;
      config.encoder_config = encoder_config;
      re::PaModel model(config, &rng);
      auc[with_tmr] =
          re::TrainAndEvaluate(&model, bags.train_bags(), bags.test_bags(),
                               trainer_config)
              .auc;
    }
    std::printf("%-22s %10.4f %10.4f\n", encoder, auc[0], auc[1]);
  }

  // And the custom encoder through the layer-level API: encode every
  // sentence, average, and train a softmax head — then the same encoder
  // inside the fusion (we reuse PaModel's heads by instantiating it with
  // "cnn" and swapping nothing; the point is the SentenceEncoder
  // interface).
  util::Rng rng(13);
  BagOfEmbeddingsEncoder custom(encoder_config, &rng);
  nn::EncoderInput sample = bags.train_bags().front().sentences.front();
  tensor::Tensor vector = custom.Encode(sample, &rng);
  std::printf("\ncustom BagOfEmbeddingsEncoder emits %zu-dim sentence "
              "vectors through the same\nnn::SentenceEncoder interface the "
              "fusion model consumes.\n", vector.size());
  return 0;
}
