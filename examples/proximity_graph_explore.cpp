// Explore the entity proximity graph and LINE embedding space — the
// paper's Table V / Figure 8 case study as a standalone tool. Shows, for a
// handful of entities, their graph neighbours, their nearest neighbours in
// embedding space, and mutual-relation "analogies" (pairs whose MR vectors
// are most similar to a query pair's).
//
// Run:  ./build/examples/proximity_graph_explore [--scale=2.0]
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "datagen/presets.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "util/logging.h"

using namespace imr;  // example code; library code never does this

namespace {

void ShowEntity(const kg::KnowledgeGraph& graph,
                const graph::ProximityGraph& proximity,
                const graph::EmbeddingStore& embeddings, kg::EntityId id) {
  const kg::Entity& entity = graph.entity(id);
  std::printf("\n== %s (types:", entity.name.c_str());
  for (int type : entity.type_ids)
    std::printf(" %s", kg::CoarseTypeNames()[static_cast<size_t>(type)].c_str());
  std::printf(") ==\n");

  auto neighbors = proximity.Neighbors(static_cast<int>(id));
  std::printf("graph degree %zu; strongest co-occurrences:", neighbors.size());
  std::sort(neighbors.begin(), neighbors.end(), [&](int a, int b) {
    return proximity.CooccurrenceCount(id, a) >
           proximity.CooccurrenceCount(id, b);
  });
  for (size_t i = 0; i < std::min<size_t>(4, neighbors.size()); ++i) {
    std::printf(" %s(%lld)",
                graph.entity(neighbors[i]).name.c_str(),
                static_cast<long long>(
                    proximity.CooccurrenceCount(id, neighbors[i])));
  }
  std::printf("\nnearest in embedding space:\n");
  for (const auto& neighbor :
       embeddings.NearestNeighbors(static_cast<int>(id), 5)) {
    std::printf("  %-28s cos=%.3f\n",
                graph.entity(neighbor.vertex).name.c_str(),
                neighbor.similarity);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::SetLogLevel(util::LogLevel::kWarning);
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale = atof(argv[i] + 8);
  }

  datagen::PresetOptions options;
  options.scale = scale;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  const kg::KnowledgeGraph& graph = dataset.world.graph;

  graph::ProximityGraph proximity(graph.num_entities());
  proximity.AddCorpus(dataset.unlabeled.sentences);
  proximity.Finalize(2);
  std::printf("proximity graph: %d vertices, %zu edges, max co-occurrence "
              "%lld\n", proximity.num_vertices(), proximity.edges().size(),
              static_cast<long long>(proximity.max_cooccurrence()));

  graph::LineConfig line;
  line.dim = 64;
  graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line);

  // Show the head and tail of the first two facts of relation 1 (the
  // synthetic "University of Washington" / "Seattle").
  int shown = 0;
  for (const kg::Triple& fact : graph.triples()) {
    if (fact.relation != 1) continue;
    ShowEntity(graph, proximity, embeddings, fact.head);
    ShowEntity(graph, proximity, embeddings, fact.tail);
    if (++shown >= 1) break;
  }

  // MR analogy: which pairs have the most similar mutual relation to the
  // first fact of relation 1?
  const kg::Triple* query = nullptr;
  for (const kg::Triple& fact : graph.triples()) {
    if (fact.relation == 1) {
      query = &fact;
      break;
    }
  }
  IMR_CHECK(query != nullptr);
  auto query_mr = embeddings.MutualRelation(static_cast<int>(query->head),
                                            static_cast<int>(query->tail));
  struct Scored {
    const kg::Triple* fact;
    double cosine;
  };
  std::vector<Scored> scored;
  for (const kg::Triple& fact : graph.triples()) {
    if (&fact == query) continue;
    auto mr = embeddings.MutualRelation(static_cast<int>(fact.head),
                                        static_cast<int>(fact.tail));
    scored.push_back({&fact, graph::EmbeddingStore::Cosine(query_mr, mr)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.cosine > b.cosine;
            });
  std::printf("\n== pairs with MR most similar to (%s, %s) [relation %s] ==\n",
              graph.entity(query->head).name.c_str(),
              graph.entity(query->tail).name.c_str(),
              graph.relation(query->relation).name.c_str());
  for (size_t i = 0; i < std::min<size_t>(6, scored.size()); ++i) {
    std::printf("  (%s, %s) cos=%.3f relation=%s\n",
                graph.entity(scored[i].fact->head).name.c_str(),
                graph.entity(scored[i].fact->tail).name.c_str(),
                scored[i].cosine,
                graph.relation(scored[i].fact->relation).name.c_str());
  }
  return 0;
}
