// Quickstart: the whole pipeline in ~80 lines.
//
//   1. Generate a small synthetic world + distant-supervision corpora
//      (the stand-in for NYT/GDS + Wikipedia, see DESIGN.md).
//   2. Build the entity proximity graph from the unlabeled corpus and
//      embed it with LINE -> implicit mutual relations.
//   3. Train the paper's PA-TMR model (PCNN + selective attention + MR +
//      entity types).
//   4. Evaluate held-out and print a few predictions.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "datagen/presets.h"
#include "graph/line.h"
#include "graph/proximity_graph.h"
#include "re/bag_dataset.h"
#include "re/pa_model.h"
#include "re/trainer.h"
#include "util/logging.h"

using namespace imr;  // example code; library code never does this

int main() {
  util::SetLogLevel(util::LogLevel::kWarning);

  // 1. Data. `scale` trades fidelity for speed.
  datagen::PresetOptions options;
  options.scale = 1.0;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  std::printf("world: %d entities, %d relations, %zu facts\n",
              dataset.world.graph.num_entities(),
              dataset.world.graph.num_relations(),
              dataset.world.graph.triples().size());

  re::BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  re::BagDataset bags =
      re::BagDataset::Build(dataset.world.graph, dataset.corpus.train,
                            dataset.corpus.test, bag_options);
  std::printf("bags: %zu train, %zu test, vocab %d\n",
              bags.train_bags().size(), bags.test_bags().size(),
              bags.vocabulary().size());

  // 2. Implicit mutual relations from the unlabeled corpus.
  graph::ProximityGraph proximity(dataset.world.graph.num_entities());
  proximity.AddCorpus(dataset.unlabeled.sentences);
  proximity.Finalize(/*min_cooccurrence=*/2);
  graph::LineConfig line;
  line.dim = 64;
  graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line);
  IMR_CHECK(bags.AttachMutualRelations(embeddings).ok());
  std::printf("proximity graph: %zu edges; LINE dim %d\n",
              proximity.edges().size(), embeddings.dim());

  // 3. PA-TMR: PCNN encoder + selective attention + MR + entity types.
  util::Rng rng(42);
  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = re::Aggregation::kAttention;
  config.use_mutual_relation = true;
  config.use_entity_type = true;
  config.mutual_relation_dim = embeddings.dim();
  config.type_dim = 8;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 32;
  config.encoder_config.word_dropout = 0.25f;
  re::PaModel model(config, &rng);
  std::printf("PA-TMR parameters: %zu\n", model.ParameterCount());

  re::TrainerConfig trainer_config;
  trainer_config.epochs = 30;
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  re::Trainer trainer(&model, trainer_config);
  trainer.Train(bags.train_bags());

  // 4. Held-out evaluation + a few concrete predictions.
  eval::HeldOutResult result = trainer.Evaluate(bags.test_bags());
  std::printf("\nheld-out: %s\n\n", result.Summary().c_str());

  const kg::KnowledgeGraph& graph = dataset.world.graph;
  int shown = 0;
  for (size_t i = 0; i < bags.test_bags().size() && shown < 5; ++i) {
    const re::Bag& bag = bags.test_bags()[i];
    if (bag.relation == kg::kNaRelation) continue;
    const int predicted = result.hard_predictions[i];
    std::printf("(%s, %s): gold=%s predicted=%s %s\n",
                graph.entity(bag.head).name.c_str(),
                graph.entity(bag.tail).name.c_str(),
                graph.relation(bag.relation).name.c_str(),
                graph.relation(predicted).name.c_str(),
                predicted == bag.relation ? "[correct]" : "[wrong]");
    ++shown;
  }
  return 0;
}
