// imr_cli — a small production-style command-line front-end over the
// library, showing the full persistence surface:
//
//   imr_cli generate --preset gds --out DIR        synthesize corpora
//   imr_cli embed    --workdir DIR                 proximity graph + LINE
//   imr_cli train    --workdir DIR [--model pa-tmr] train + save params
//   imr_cli eval     --workdir DIR [--model pa-tmr] reload + held-out eval
//   imr_cli nn       --workdir DIR --entity NAME   nearest neighbours
//
// Every step reads only the files the previous step wrote, so the stages
// can run in separate processes (or machines).
#include <cstdio>
#include <cstring>
#include <string>

#include "imr.h"

using namespace imr;  // example code; library code never does this

namespace {

constexpr const char* kUsage =
    "usage: imr_cli <generate|embed|train|eval|nn> [flags]\n"
    "  generate --preset nyt|gds --scale S --out DIR\n"
    "  embed    --workdir DIR [--dim 64] [--source line|deepwalk]\n"
    "  train    --workdir DIR [--model pa-tmr|pcnn-att] [--epochs N]\n"
    "  eval     --workdir DIR [--model pa-tmr|pcnn-att]\n"
    "  nn       --workdir DIR --entity NAME [--k 10]\n";

// The CLI persists the KG alongside the corpora by regenerating it from
// the recorded preset+scale+seed (the generator is deterministic), which
// keeps the on-disk format to corpora + embeddings + parameters.
struct Manifest {
  std::string preset = "gds";
  double scale = 1.0;
  uint64_t seed = 7;

  util::Status Save(const std::string& dir) const {
    util::BinaryWriter writer(dir + "/manifest.bin", 0x494D524Du, 1);
    IMR_RETURN_IF_ERROR(writer.status());
    writer.WriteString(preset);
    writer.WriteDouble(scale);
    writer.WriteU64(seed);
    return writer.Close();
  }
  static util::StatusOr<Manifest> Load(const std::string& dir) {
    util::BinaryReader reader(dir + "/manifest.bin", 0x494D524Du, 1);
    IMR_RETURN_IF_ERROR(reader.status());
    Manifest manifest;
    manifest.preset = reader.ReadString();
    manifest.scale = reader.ReadDouble();
    manifest.seed = reader.ReadU64();
    IMR_RETURN_IF_ERROR(reader.status());
    return manifest;
  }
};

datagen::SyntheticDataset Regenerate(const Manifest& manifest) {
  datagen::PresetOptions options;
  options.scale = manifest.scale;
  options.seed = manifest.seed;
  return datagen::MakeDataset(manifest.preset, options);
}

re::BagDatasetOptions BagOptions() {
  re::BagDatasetOptions options;
  options.max_sentence_length = 40;
  options.max_position = 20;
  return options;
}

re::PaModelConfig ModelConfig(const std::string& model,
                              const re::BagDataset& bags, int mr_dim) {
  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = re::Aggregation::kAttention;
  config.use_mutual_relation = (model == "pa-tmr" || model == "pa-mr");
  config.use_entity_type = (model == "pa-tmr" || model == "pa-t");
  config.mutual_relation_dim = mr_dim;
  config.type_dim = 8;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 32;
  config.encoder_config.word_dropout = 0.25f;
  return config;
}

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Generate(const util::FlagParser& flags) {
  Manifest manifest;
  manifest.preset = flags.GetString("preset");
  manifest.scale = flags.GetDouble("scale");
  manifest.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const std::string out = flags.GetString("out");
  IMR_CHECK(!out.empty());
  auto made = util::MakeDirectories(out);
  if (!made.ok()) return Fail(made);

  datagen::SyntheticDataset dataset = Regenerate(manifest);
  auto s1 = text::SaveLabeledCorpus(dataset.corpus.train, out + "/train.bin");
  auto s2 = text::SaveLabeledCorpus(dataset.corpus.test, out + "/test.bin");
  auto s3 = text::SaveUnlabeledCorpus(dataset.unlabeled.sentences,
                                      out + "/unlabeled.bin");
  auto s4 = manifest.Save(out);
  for (const util::Status& s : {s1, s2, s3, s4})
    if (!s.ok()) return Fail(s);
  std::printf("generated %s: %zu train / %zu test labeled sentences, %zu "
              "unlabeled\n", manifest.preset.c_str(),
              dataset.corpus.train.size(), dataset.corpus.test.size(),
              dataset.unlabeled.sentences.size());
  return 0;
}

int Embed(const util::FlagParser& flags) {
  const std::string dir = flags.GetString("workdir");
  auto manifest = Manifest::Load(dir);
  if (!manifest.ok()) return Fail(manifest.status());
  auto unlabeled = text::LoadUnlabeledCorpus(dir + "/unlabeled.bin");
  if (!unlabeled.ok()) return Fail(unlabeled.status());

  datagen::SyntheticDataset dataset = Regenerate(*manifest);
  graph::ProximityGraph proximity(dataset.world.graph.num_entities());
  proximity.AddCorpus(*unlabeled);
  proximity.Finalize(2);

  graph::EmbeddingStore store;
  const std::string source = flags.GetString("source");
  const int dim = static_cast<int>(flags.GetInt("dim"));
  if (source == "deepwalk") {
    graph::DeepWalkConfig config;
    config.dim = dim;
    store = graph::TrainDeepWalk(proximity, config);
  } else {
    graph::LineConfig config;
    config.dim = dim;
    store = graph::TrainLine(proximity, config);
  }
  auto saved = store.Save(dir + "/entities.emb");
  if (!saved.ok()) return Fail(saved);
  std::printf("embedded %d entities into %d dims via %s (%zu graph edges)\n",
              store.num_vertices(), store.dim(), source.c_str(),
              proximity.edges().size());
  return 0;
}

util::StatusOr<re::BagDataset> LoadBags(const Manifest& manifest,
                                        const std::string& dir,
                                        datagen::SyntheticDataset* dataset) {
  auto train = text::LoadLabeledCorpus(dir + "/train.bin");
  IMR_RETURN_IF_ERROR(train.status());
  auto test = text::LoadLabeledCorpus(dir + "/test.bin");
  IMR_RETURN_IF_ERROR(test.status());
  *dataset = Regenerate(manifest);
  return re::BagDataset::Build(dataset->world.graph, *train, *test,
                               BagOptions());
}

int Train(const util::FlagParser& flags) {
  const std::string dir = flags.GetString("workdir");
  const std::string model_name = flags.GetString("model");
  auto manifest = Manifest::Load(dir);
  if (!manifest.ok()) return Fail(manifest.status());
  datagen::SyntheticDataset dataset(datagen::TemplateConfig{});
  auto bags = LoadBags(*manifest, dir, &dataset);
  if (!bags.ok()) return Fail(bags.status());
  auto embeddings = graph::EmbeddingStore::Load(dir + "/entities.emb");
  if (!embeddings.ok()) return Fail(embeddings.status());
  auto attached = bags->AttachMutualRelations(*embeddings);
  if (!attached.ok()) return Fail(attached);

  util::Rng rng(manifest->seed);
  re::PaModel model(ModelConfig(model_name, *bags, embeddings->dim()), &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = static_cast<int>(flags.GetInt("epochs"));
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  re::Trainer trainer(&model, trainer_config);
  trainer.Train(bags->train_bags());
  auto saved = model.SaveParameters(dir + "/" + model_name + ".params");
  if (!saved.ok()) return Fail(saved);
  std::printf("trained %s (%zu parameters) for %d epochs; saved\n",
              model_name.c_str(), model.ParameterCount(),
              trainer_config.epochs);
  return 0;
}

int Eval(const util::FlagParser& flags) {
  const std::string dir = flags.GetString("workdir");
  const std::string model_name = flags.GetString("model");
  auto manifest = Manifest::Load(dir);
  if (!manifest.ok()) return Fail(manifest.status());
  datagen::SyntheticDataset dataset(datagen::TemplateConfig{});
  auto bags = LoadBags(*manifest, dir, &dataset);
  if (!bags.ok()) return Fail(bags.status());
  auto embeddings = graph::EmbeddingStore::Load(dir + "/entities.emb");
  if (!embeddings.ok()) return Fail(embeddings.status());
  auto attached = bags->AttachMutualRelations(*embeddings);
  if (!attached.ok()) return Fail(attached);

  util::Rng rng(manifest->seed);
  re::PaModel model(ModelConfig(model_name, *bags, embeddings->dim()), &rng);
  auto loaded = model.LoadParameters(dir + "/" + model_name + ".params");
  if (!loaded.ok()) return Fail(loaded);
  model.SetTraining(false);

  auto result = eval::Evaluate(
      [&](const re::Bag& bag) { return model.Predict(bag, &rng); },
      bags->test_bags(), bags->num_relations());
  std::printf("%s on %s: %s\n", model_name.c_str(),
              manifest->preset.c_str(), result.Summary().c_str());

  auto breakdown = eval::PerRelationBreakdown(
      result.gold_labels, result.hard_predictions, bags->num_relations());
  std::printf("macro over %d relations: P=%.4f R=%.4f F1=%.4f\n",
              breakdown.relations_with_support, breakdown.macro_precision,
              breakdown.macro_recall, breakdown.macro_f1);
  return 0;
}

int NearestNeighbors(const util::FlagParser& flags) {
  const std::string dir = flags.GetString("workdir");
  auto manifest = Manifest::Load(dir);
  if (!manifest.ok()) return Fail(manifest.status());
  auto embeddings = graph::EmbeddingStore::Load(dir + "/entities.emb");
  if (!embeddings.ok()) return Fail(embeddings.status());
  datagen::SyntheticDataset dataset = Regenerate(*manifest);
  auto entity = dataset.world.graph.FindEntity(flags.GetString("entity"));
  if (!entity.ok()) return Fail(entity.status());
  const int k = static_cast<int>(flags.GetInt("k"));
  std::printf("nearest %d to %s:\n", k, flags.GetString("entity").c_str());
  for (const auto& neighbor :
       embeddings->NearestNeighbors(static_cast<int>(*entity), k)) {
    std::printf("  %-30s cos=%.3f\n",
                dataset.world.graph.entity(neighbor.vertex).name.c_str(),
                neighbor.similarity);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::SetLogLevel(util::LogLevel::kWarning);
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string command = argv[1];
  util::FlagParser flags;
  flags.AddString("preset", "gds", "nyt | gds");
  flags.AddDouble("scale", 1.0, "dataset size multiplier");
  flags.AddInt("seed", 7, "generator seed");
  flags.AddString("out", "imr_workdir", "output directory (generate)");
  flags.AddString("workdir", "imr_workdir", "working directory");
  flags.AddInt("dim", 64, "embedding dimension (embed)");
  flags.AddString("source", "line", "line | deepwalk (embed)");
  flags.AddString("model", "pa-tmr", "pa-tmr | pa-mr | pa-t | pcnn-att");
  flags.AddInt("epochs", 30, "training epochs (train)");
  flags.AddString("entity", "", "entity name (nn)");
  flags.AddInt("k", 10, "neighbour count (nn)");
  flags.AddInt("imr_threads", 0,
               "worker threads for kernels/graph/trainer "
               "(0 = hardware concurrency, 1 = sequential bit-exact)");
  util::Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    if (status.code() == util::StatusCode::kNotFound) return 0;
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(), kUsage);
    return 1;
  }
  util::SetGlobalThreads(static_cast<int>(flags.GetInt("imr_threads")));
  if (command == "generate") return Generate(flags);
  if (command == "embed") return Embed(flags);
  if (command == "train") return Train(flags);
  if (command == "eval") return Eval(flags);
  if (command == "nn") return NearestNeighbors(flags);
  std::fputs(kUsage, stderr);
  return 1;
}
