// imr_serve — the serving side of the library: package a trained pipeline
// into a single snapshot file, then answer relation queries from it in a
// fresh process with no training machinery loaded.
//
//   imr_serve train-demo --workdir DIR [--preset gds --scale 0.6
//                         --epochs 12 --seed 7]
//       synthesizes a corpus, trains PA-TMR end to end, writes
//       DIR/model.imrs (the snapshot) and DIR/queries.tsv (sample queries
//       drawn from the held-out split).
//
//   imr_serve query --workdir DIR [--queries FILE.tsv] [--top_k 3]
//                   [--threads 0] [--async] [--max_batch 32]
//                   [--batch_delay_us 200] [--cache 4096]
//       loads DIR/model.imrs, answers every query in the TSV, prints the
//       top-k relations per entity pair and the engine's latency counters.
//
//   imr_serve serve --workdir DIR [--replicas 1] [--workers 1]
//                   [--cache_shards 8] [--max_queue 1024] [--deadline_us 0]
//                   [--watch_ms 0]
//       interactive serving loop over a sharded ServeRouter. Reads
//       commands from stdin, one per line:
//         <query TSV line>        answer one query (format below)
//         reload <snapshot.imrs>  hot-swap to a new snapshot generation
//         reload-delta <f.imrd>   apply a row-sparse delta generation
//         stats                   print latency/cache/admission counters
//         quit                    exit
//       --watch_ms N > 0 additionally polls DIR/model.imrs every N ms and
//       hot-swaps automatically when the file changes (SnapshotWatcher);
//       sibling *.imrd delta files are applied in base-hash chain order.
//
// Query TSV format (one sentence per line; consecutive lines with the same
// entity pair form one bag):
//   head_name <TAB> tail_name <TAB> head_index <TAB> tail_index <TAB> tokens
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "imr.h"
#include "util/string_util.h"

using namespace imr;  // example code; library code never does this

namespace {

constexpr const char* kUsage =
    "usage: imr_serve <train-demo|query> [flags]\n"
    "  train-demo --workdir DIR [--preset nyt|gds] [--scale S]\n"
    "             [--epochs N] [--seed S]\n"
    "  query      --workdir DIR [--queries FILE.tsv] [--top_k K]\n"
    "             [--threads N] [--async] [--max_batch B]\n"
    "             [--batch_delay_us U] [--cache C]\n"
    "  serve      --workdir DIR [--replicas R] [--workers W]\n"
    "             [--cache_shards S] [--max_queue Q] [--deadline_us D]\n"
    "             [--watch_ms N]\n";

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

re::BagDatasetOptions DemoBagOptions() {
  re::BagDatasetOptions options;
  options.max_sentence_length = 40;
  options.max_position = 20;
  return options;
}

int TrainDemo(const util::FlagParser& flags) {
  const std::string dir = flags.GetString("workdir");
  auto made = util::MakeDirectories(dir);
  if (!made.ok()) return Fail(made);

  datagen::PresetOptions preset_options;
  preset_options.scale = flags.GetDouble("scale");
  preset_options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  datagen::SyntheticDataset dataset =
      datagen::MakeDataset(flags.GetString("preset"), preset_options);

  const re::BagDatasetOptions bag_options = DemoBagOptions();
  re::BagDataset bags = re::BagDataset::Build(
      dataset.world.graph, dataset.corpus.train, dataset.corpus.test,
      bag_options);

  graph::ProximityGraph proximity(dataset.world.graph.num_entities());
  proximity.AddCorpus(dataset.unlabeled.sentences);
  proximity.Finalize(2);
  graph::LineConfig line_config;
  line_config.dim = 32;
  line_config.samples_per_edge = 150;
  graph::EmbeddingStore embeddings = graph::TrainLine(proximity, line_config);
  auto attached = bags.AttachMutualRelations(embeddings);
  if (!attached.ok()) return Fail(attached);

  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = re::Aggregation::kAttention;
  config.use_mutual_relation = true;
  config.use_entity_type = true;
  config.mutual_relation_dim = embeddings.dim();
  config.type_dim = 8;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = bag_options.max_position;
  config.encoder_config.filters = 32;
  config.encoder_config.word_dropout = 0.25f;

  util::Rng rng(preset_options.seed);
  re::PaModel model(config, &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = static_cast<int>(flags.GetInt("epochs"));
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  re::Trainer trainer(&model, trainer_config);
  trainer.Train(bags.train_bags());

  const std::string snapshot_path = dir + "/model.imrs";
  auto saved = serve::SaveSnapshot(
      model, bags.vocabulary(), embeddings, dataset.world.graph, bag_options,
      static_cast<uint64_t>(trainer_config.epochs),
      "imr_serve train-demo (" + flags.GetString("preset") + ")",
      snapshot_path);
  if (!saved.ok()) return Fail(saved);

  // Sample queries: held-out sentences, one line each; the query command
  // groups consecutive lines with the same entity pair into one bag.
  const std::string queries_path = dir + "/queries.tsv";
  std::ofstream queries(queries_path);
  if (!queries) return Fail(util::IoError("cannot write " + queries_path));
  size_t written = 0;
  for (const text::LabeledSentence& labeled : dataset.corpus.test) {
    if (written >= 200) break;
    const text::Sentence& sentence = labeled.sentence;
    queries << dataset.world.graph.entity(sentence.head_entity).name << '\t'
            << dataset.world.graph.entity(sentence.tail_entity).name << '\t'
            << sentence.head_index << '\t' << sentence.tail_index << '\t'
            << util::Join(sentence.tokens, " ") << '\n';
    ++written;
  }
  queries.close();

  std::printf("trained %d-relation PA-TMR for %d epochs\n",
              config.num_relations, trainer_config.epochs);
  std::printf("snapshot: %s\nqueries:  %s (%zu sentences)\n",
              snapshot_path.c_str(), queries_path.c_str(), written);
  return 0;
}

struct QueryLine {
  std::string head;
  std::string tail;
  text::Sentence sentence;
};

util::StatusOr<std::vector<QueryLine>> ReadQueryFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::IoError("cannot open query file " + path);
  std::vector<QueryLine> lines;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() != 5) {
      return util::InvalidArgument(util::StrFormat(
          "%s:%d: expected 5 tab-separated fields, got %zu", path.c_str(),
          lineno, fields.size()));
    }
    QueryLine parsed;
    parsed.head = fields[0];
    parsed.tail = fields[1];
    parsed.sentence.head_index = std::atoi(fields[2].c_str());
    parsed.sentence.tail_index = std::atoi(fields[3].c_str());
    parsed.sentence.tokens = util::SplitWhitespace(fields[4]);
    lines.push_back(std::move(parsed));
  }
  return lines;
}

// Extended counter dump shared by `query` and `serve`: latency
// percentiles, per-shard cache traffic, and (router only) admission
// counters.
void PrintStats(const serve::EngineStats& stats) {
  std::printf(
      "gen=%llu requests=%llu batches=%llu; mr-cache %llu hit / %llu miss\n"
      "latency us: mean=%.0f p50=%.0f p99=%.0f p999=%.0f max=%.0f; "
      "qps=%.0f\n"
      "admission: queue depth=%llu peak=%llu admitted=%llu rejected=%llu "
      "shed=%llu\n",
      static_cast<unsigned long long>(stats.generation),
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.mr_cache_hits),
      static_cast<unsigned long long>(stats.mr_cache_misses),
      stats.mean_latency_us, stats.p50_latency_us, stats.p99_latency_us,
      stats.p999_latency_us, stats.max_latency_us, stats.qps,
      static_cast<unsigned long long>(stats.queue_depth),
      static_cast<unsigned long long>(stats.queue_peak),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected_queue_full),
      static_cast<unsigned long long>(stats.shed_deadline));
  std::printf("cache shards:");
  for (size_t s = 0; s < stats.cache_shards.size(); ++s) {
    std::printf(" s%zu=%llu/%llu", s,
                static_cast<unsigned long long>(stats.cache_shards[s].hits),
                static_cast<unsigned long long>(stats.cache_shards[s].misses));
  }
  std::printf("  (hits/misses)\n");
}

int Query(const util::FlagParser& flags) {
  const std::string dir = flags.GetString("workdir");
  std::string queries_path = flags.GetString("queries");
  if (queries_path.empty()) queries_path = dir + "/queries.tsv";

  serve::EngineOptions options;
  options.top_k = static_cast<int>(flags.GetInt("top_k"));
  options.threads = static_cast<int>(flags.GetInt("threads"));
  options.max_batch = static_cast<int>(flags.GetInt("max_batch"));
  options.batch_delay_us = static_cast<int>(flags.GetInt("batch_delay_us"));
  options.mr_cache_capacity = static_cast<size_t>(flags.GetInt("cache"));
  auto engine = serve::InferenceEngine::Open(dir + "/model.imrs", options);
  if (!engine.ok()) return Fail(engine.status());

  auto lines = ReadQueryFile(queries_path);
  if (!lines.ok()) return Fail(lines.status());

  // Group consecutive lines with the same entity pair into one bag.
  std::vector<serve::Query> queries;
  std::vector<std::pair<std::string, std::string>> pair_names;
  for (const QueryLine& parsed : *lines) {
    if (pair_names.empty() || pair_names.back().first != parsed.head ||
        pair_names.back().second != parsed.tail) {
      auto query =
          (*engine)->MakeQuery(parsed.head, parsed.tail, {parsed.sentence});
      if (!query.ok()) return Fail(query.status());
      queries.push_back(std::move(*query));
      pair_names.emplace_back(parsed.head, parsed.tail);
    } else {
      text::Sentence sentence = parsed.sentence;
      sentence.head_entity = queries.back().head;
      sentence.tail_entity = queries.back().tail;
      queries.back().sentences.push_back(std::move(sentence));
    }
  }

  const bool use_async = flags.GetBool("async");
  std::vector<util::StatusOr<serve::Prediction>> results;
  if (use_async) {
    std::vector<std::future<util::StatusOr<serve::Prediction>>> futures;
    futures.reserve(queries.size());
    for (serve::Query& query : queries) {
      futures.push_back((*engine)->SubmitAsync(std::move(query)));
    }
    for (auto& future : futures) results.push_back(future.get());
  } else {
    results = (*engine)->PredictBatch(queries);
  }

  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("(%s, %s)", pair_names[i].first.c_str(),
                pair_names[i].second.c_str());
    if (!results[i].ok()) {
      std::printf("  error: %s\n", results[i].status().ToString().c_str());
      continue;
    }
    for (const serve::ScoredRelation& scored : results[i]->top) {
      std::printf("  %s=%.3f", scored.name.c_str(), scored.probability);
    }
    std::printf("\n");
  }

  std::printf("\nmode: %s\n",
              use_async ? "async micro-batched" : "one PredictBatch");
  PrintStats((*engine)->Stats());
  return 0;
}

// Interactive serving loop over a ServeRouter: query lines, `reload`,
// `stats`, `quit`. With --watch_ms, a SnapshotWatcher additionally
// hot-swaps whenever workdir/model.imrs changes on disk.
int Serve(const util::FlagParser& flags) {
  const std::string dir = flags.GetString("workdir");
  const std::string snapshot_path = dir + "/model.imrs";

  serve::RouterOptions options;
  options.replicas = static_cast<int>(flags.GetInt("replicas"));
  options.workers_per_replica = static_cast<int>(flags.GetInt("workers"));
  options.engine.top_k = static_cast<int>(flags.GetInt("top_k"));
  options.engine.cache_shards = static_cast<size_t>(
      flags.GetInt("cache_shards"));
  options.engine.mr_cache_capacity =
      static_cast<size_t>(flags.GetInt("cache"));
  options.admission.max_queue =
      static_cast<size_t>(flags.GetInt("max_queue"));
  options.admission.deadline_us = flags.GetInt("deadline_us");
  auto router = serve::ServeRouter::Open(snapshot_path, options);
  if (!router.ok()) return Fail(router.status());

  std::unique_ptr<serve::SnapshotWatcher> watcher;
  const int watch_ms = static_cast<int>(flags.GetInt("watch_ms"));
  if (watch_ms > 0) {
    serve::WatcherOptions watcher_options;
    watcher_options.poll_interval_ms = watch_ms;
    watcher = std::make_unique<serve::SnapshotWatcher>(
        snapshot_path,
        [&router](const std::string& path) {
          util::Status swapped = (*router)->Reload(path);
          if (swapped.ok()) {
            std::printf("auto-reload: now serving generation %llu\n",
                        static_cast<unsigned long long>(
                            (*router)->generation()));
          }
          return swapped;
        },
        watcher_options);
    // Row-sparse generations: `*.imrd` files dropped next to model.imrs
    // are applied in base-hash chain order through ReloadDelta.
    serve::DeltaHooks delta_hooks;
    delta_hooks.serving_hash = [&router] { return (*router)->content_hash(); };
    delta_hooks.apply = [&router](const std::string& delta_path) {
      util::Status applied = (*router)->ReloadDelta(delta_path);
      if (applied.ok()) {
        std::printf("auto-delta: now serving generation %llu\n",
                    static_cast<unsigned long long>((*router)->generation()));
      }
      return applied;
    };
    watcher->WatchDeltas(std::move(delta_hooks));
    watcher->Start();
  }

  std::printf(
      "serving generation %llu (%d replicas x %d workers, %zu cache "
      "shards, max_queue=%zu, deadline_us=%lld)\n"
      "commands: <query TSV line> | reload <snapshot.imrs> | "
      "reload-delta <file.imrd> | stats | quit\n",
      static_cast<unsigned long long>((*router)->generation()),
      options.replicas, options.workers_per_replica,
      options.engine.cache_shards, options.admission.max_queue,
      static_cast<long long>(options.admission.deadline_us));

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    if (line == "stats") {
      PrintStats((*router)->Stats().aggregate);
      continue;
    }
    if (line.rfind("reload-delta ", 0) == 0) {
      const std::string path = line.substr(13);
      util::Status applied = (*router)->ReloadDelta(path);
      if (!applied.ok()) {
        std::printf(
            "delta reload failed (still serving generation %llu): %s\n",
            static_cast<unsigned long long>((*router)->generation()),
            applied.ToString().c_str());
      } else {
        std::printf("now serving generation %llu (delta, hash %016llx)\n",
                    static_cast<unsigned long long>((*router)->generation()),
                    static_cast<unsigned long long>(
                        (*router)->content_hash()));
      }
      continue;
    }
    if (line.rfind("reload ", 0) == 0 || line == "reload") {
      std::string path = line.size() > 7 ? line.substr(7) : snapshot_path;
      if (path.empty()) path = snapshot_path;
      util::Status swapped = (*router)->Reload(path);
      if (!swapped.ok()) {
        std::printf("reload failed (still serving generation %llu): %s\n",
                    static_cast<unsigned long long>((*router)->generation()),
                    swapped.ToString().c_str());
      } else {
        std::printf("now serving generation %llu\n",
                    static_cast<unsigned long long>((*router)->generation()));
      }
      continue;
    }
    std::vector<std::string> fields = util::Split(line, '\t');
    if (fields.size() != 5) {
      std::printf("expected 5 tab-separated fields (or a command), got "
                  "%zu\n", fields.size());
      continue;
    }
    text::Sentence sentence;
    sentence.head_index = std::atoi(fields[2].c_str());
    sentence.tail_index = std::atoi(fields[3].c_str());
    sentence.tokens = util::SplitWhitespace(fields[4]);
    auto query = (*router)->MakeQuery(fields[0], fields[1], {sentence});
    if (!query.ok()) {
      std::printf("error: %s\n", query.status().ToString().c_str());
      continue;
    }
    auto prediction = (*router)->Predict(*query);
    if (!prediction.ok()) {
      std::printf("error: %s\n", prediction.status().ToString().c_str());
      continue;
    }
    std::printf("(%s, %s) gen=%llu", fields[0].c_str(), fields[1].c_str(),
                static_cast<unsigned long long>(prediction->generation));
    for (const serve::ScoredRelation& scored : prediction->top) {
      std::printf("  %s=%.3f", scored.name.c_str(), scored.probability);
    }
    std::printf("\n");
  }

  if (watcher != nullptr) watcher->Stop();
  PrintStats((*router)->Stats().aggregate);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::SetLogLevel(util::LogLevel::kWarning);
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 1;
  }
  const std::string command = argv[1];
  util::FlagParser flags;
  flags.AddString("workdir", "imr_serve_demo", "working directory");
  flags.AddString("preset", "gds", "nyt | gds (train-demo)");
  flags.AddDouble("scale", 0.6, "dataset size multiplier (train-demo)");
  flags.AddInt("seed", 7, "generator + init seed (train-demo)");
  flags.AddInt("epochs", 12, "training epochs (train-demo)");
  flags.AddString("queries", "", "query TSV (default workdir/queries.tsv)");
  flags.AddInt("top_k", 3, "relations printed per pair (query)");
  flags.AddInt("threads", 0, "engine threads; 0 = shared global pool");
  flags.AddBool("async", false, "use SubmitAsync micro-batching (query)");
  flags.AddInt("max_batch", 32, "micro-batch flush size (query --async)");
  flags.AddInt("batch_delay_us", 200, "micro-batch linger (query --async)");
  flags.AddInt("cache", 4096, "mutual-relation LRU capacity (query)");
  flags.AddInt("replicas", 1, "engine replicas behind the router (serve)");
  flags.AddInt("workers", 1, "worker threads per replica (serve)");
  flags.AddInt("cache_shards", 8, "MR-cache shard count (serve)");
  flags.AddInt("max_queue", 1024,
               "per-replica queue bound; 0 = unbounded (serve)");
  flags.AddInt("deadline_us", 0,
               "queue-wait budget before shedding; 0 = none (serve)");
  flags.AddInt("watch_ms", 0,
               "poll model.imrs and auto-reload every N ms; 0 = off (serve)");
  util::Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    if (status.code() == util::StatusCode::kNotFound) return 0;
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(), kUsage);
    return 1;
  }
  if (command == "train-demo") return TrainDemo(flags);
  if (command == "query") return Query(flags);
  if (command == "serve") return Serve(flags);
  std::fputs(kUsage, stderr);
  return 1;
}
