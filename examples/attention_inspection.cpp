// Inspect the selective-attention weights — the paper's noise-mitigation
// mechanism, made visible. The synthetic generator records whether each
// sentence truly expresses its bag's relation (`true_relation`), so after
// training PCNN+ATT we can check the claim directly: attention should
// concentrate on the sentences that carry the relation's lexical evidence
// and discount the wrong-label noise.
//
// Run:  ./build/examples/attention_inspection
#include <cstdio>
#include <map>

#include "imr.h"

using namespace imr;  // example code; library code never does this

int main() {
  util::SetLogLevel(util::LogLevel::kWarning);
  datagen::PresetOptions options;
  options.scale = 1.5;
  datagen::SyntheticDataset dataset = datagen::MakeGdsLike(options);
  re::BagDatasetOptions bag_options;
  bag_options.max_sentence_length = 40;
  bag_options.max_position = 20;
  re::BagDataset bags =
      re::BagDataset::Build(dataset.world.graph, dataset.corpus.train,
                            dataset.corpus.test, bag_options);

  // Rebuild the per-bag "is this sentence clean?" flags from the corpus.
  // Keyed by (head, tail); order matches BagDataset's per-pair grouping
  // because it preserves corpus order within a bag.
  std::map<std::pair<int64_t, int64_t>, std::vector<bool>> clean_flags;
  for (const text::LabeledSentence& labeled : dataset.corpus.train) {
    clean_flags[{labeled.sentence.head_entity,
                 labeled.sentence.tail_entity}]
        .push_back(labeled.true_relation == labeled.relation &&
                   labeled.relation != kg::kNaRelation);
  }

  // Train a plain PCNN+ATT model.
  util::Rng rng(11);
  re::PaModelConfig config;
  config.num_relations = bags.num_relations();
  config.encoder = "pcnn";
  config.aggregation = re::Aggregation::kAttention;
  config.encoder_config.vocab_size = bags.vocabulary().size();
  config.encoder_config.word_dim = 16;
  config.encoder_config.position_dim = 3;
  config.encoder_config.max_position = 20;
  config.encoder_config.filters = 32;
  config.encoder_config.word_dropout = 0.25f;
  re::PaModel model(config, &rng);
  re::TrainerConfig trainer_config;
  trainer_config.epochs = 40;
  trainer_config.batch_size = 32;
  trainer_config.optimizer = "adam";
  trainer_config.learning_rate = 0.01f;
  re::Trainer trainer(&model, trainer_config);
  trainer.Train(bags.train_bags());
  model.SetTraining(false);

  // Rebuild the attention layer's view: encode each bag, ask the attention
  // module for its weights under the gold query, and compare the mean
  // weight of clean vs noisy sentences.
  //
  // PaModel owns its attention internally, so for inspection we recreate
  // the computation with the public pieces: a fresh SelectiveAttention
  // cannot reuse the trained weights, so instead we read the trained
  // weights through the bag probabilities: P(gold | bag) with and without
  // each sentence (leave-one-out) measures the sentence's contribution —
  // a model-agnostic attribution that needs no internals.
  tensor::NoGradGuard no_grad;
  double clean_drop_sum = 0, noisy_drop_sum = 0;
  int clean_count = 0, noisy_count = 0;
  int inspected = 0;
  for (const re::Bag& bag : bags.train_bags()) {
    if (bag.relation == kg::kNaRelation || bag.sentences.size() < 2)
      continue;
    auto it = clean_flags.find({bag.head, bag.tail});
    if (it == clean_flags.end() ||
        it->second.size() != bag.sentences.size())
      continue;
    const float full =
        model.Predict(bag, &rng)[static_cast<size_t>(bag.relation)];
    for (size_t s = 0; s < bag.sentences.size(); ++s) {
      re::Bag ablated = bag;
      ablated.sentences.erase(ablated.sentences.begin() +
                              static_cast<long>(s));
      const float without =
          model.Predict(ablated, &rng)[static_cast<size_t>(bag.relation)];
      const double drop = static_cast<double>(full) - without;
      if (it->second[s]) {
        clean_drop_sum += drop;
        ++clean_count;
      } else {
        noisy_drop_sum += drop;
        ++noisy_count;
      }
    }
    if (++inspected >= 120) break;  // plenty for a stable estimate
  }

  const double clean_mean = clean_count ? clean_drop_sum / clean_count : 0;
  const double noisy_mean = noisy_count ? noisy_drop_sum / noisy_count : 0;
  std::printf("leave-one-out contribution to P(gold | bag), %d bags:\n",
              inspected);
  std::printf("  clean sentences (express the relation): %+0.4f  (n=%d)\n",
              clean_mean, clean_count);
  std::printf("  noisy sentences (wrong-label):          %+0.4f  (n=%d)\n",
              noisy_mean, noisy_count);
  if (clean_mean > noisy_mean) {
    std::printf("\n-> removing a clean sentence hurts more than removing a "
                "noisy one:\n   the attention-weighted bag leans on the "
                "true evidence, as the paper claims.\n");
    return 0;
  }
  std::printf("\n-> unexpected: noise contributed as much as evidence "
              "(undertrained model?)\n");
  return 1;
}
